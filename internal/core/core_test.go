package core

import (
	"context"
	"strings"
	"testing"

	"vada/internal/datagen"
	"vada/internal/kb"
	"vada/internal/relation"
	"vada/internal/transducer"
)

func testScenario(t *testing.T, n int) *datagen.Scenario {
	t.Helper()
	cfg := datagen.DefaultConfig()
	cfg.NProperties = n
	return datagen.Generate(cfg)
}

func TestBootstrapProducesResult(t *testing.T) {
	sc := testScenario(t, 120)
	w := BuildScenarioWrangler(sc)
	steps, err := w.Run(context.Background())
	if err != nil {
		t.Fatalf("bootstrap failed: %v\ntrace:\n%s", err, transducer.TraceString(w.Trace()))
	}
	if len(steps) == 0 {
		t.Fatal("bootstrap should run transducers")
	}
	res := w.Result()
	if res == nil || res.Cardinality() == 0 {
		t.Fatal("bootstrap should produce a result")
	}
	if !res.Schema.HasAttr("crimerank") || !res.Schema.HasAttr("street") {
		t.Fatalf("result schema %v", res.Schema)
	}
	clean := w.ResultClean()
	if clean.Schema.HasAttr("_src") {
		t.Fatal("ResultClean should drop provenance")
	}
	// Re-running without new information is a no-op (quiescence).
	more, err := w.Run(context.Background())
	if err != nil || len(more) != 0 {
		t.Fatalf("quiescence violated: %d steps, %v\ntrace:\n%s",
			len(more), err, transducer.TraceString(more))
	}
}

func TestBootstrapActivityOrdering(t *testing.T) {
	sc := testScenario(t, 60)
	w := BuildScenarioWrangler(sc)
	steps, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first := map[string]int{}
	for _, s := range steps {
		if _, ok := first[s.Activity]; !ok {
			first[s.Activity] = s.Seq
		}
	}
	// Dataflow-imposed order: extraction before matching before mapping
	// before execution before fusion.
	chain := []string{"extraction", "matching", "mapping", "execution", "selection", "fusion"}
	for i := 1; i < len(chain); i++ {
		a, b := chain[i-1], chain[i]
		if first[a] == 0 || first[b] == 0 {
			t.Fatalf("activity %s or %s never ran; trace:\n%s", a, b, transducer.TraceString(steps))
		}
		if first[a] > first[b] {
			t.Errorf("%s (step %d) should precede %s (step %d)", a, first[a], b, first[b])
		}
	}
}

func TestDataContextImprovesResult(t *testing.T) {
	sc := testScenario(t, 150)
	w := BuildScenarioWrangler(sc)
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := sc.Oracle.ScoreResult(w.ResultClean())

	w.AddDataContext(sc.AddressRef)
	steps, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("data context must re-trigger transducers")
	}
	after := sc.Oracle.ScoreResult(w.ResultClean())

	// The paper's step-2 claim: the result should now be of better quality.
	// Data context fixes identification (matching, repair, joins): F1 and
	// crimerank completeness must improve strictly; accuracy of asserted
	// values must not regress. (Value errors like the bedroom area are
	// feedback's job, not data context's.)
	if after.F1 <= before.F1 {
		t.Errorf("F1 should improve with data context: %.3f -> %.3f", before.F1, after.F1)
	}
	if after.Completeness["crimerank"] <= before.Completeness["crimerank"] {
		t.Errorf("crimerank completeness should improve: %.3f -> %.3f",
			before.Completeness["crimerank"], after.Completeness["crimerank"])
	}
	if after.ValueAccuracy < before.ValueAccuracy-0.02 {
		t.Errorf("value accuracy regressed: %.3f -> %.3f", before.ValueAccuracy, after.ValueAccuracy)
	}
	// CFDs must have been learned.
	if len(w.CFDs()) == 0 {
		t.Error("data context should yield CFDs")
	}
	// Instance matching should widen onthemarket's mapped attributes.
	found := false
	for _, m := range w.Matches() {
		if m.SourceRel == "onthemarket" && m.SourceAttr == "address_line" &&
			m.TargetAttr == "street" && m.Score >= 0.6 {
			found = true
		}
	}
	if !found {
		t.Error("instance matching should recover address_line→street")
	}
}

func TestFeedbackImprovesBedroomAccuracy(t *testing.T) {
	sc := testScenario(t, 200)
	w := BuildScenarioWrangler(sc)
	ctx := context.Background()
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	w.AddDataContext(sc.AddressRef)
	if _, err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	before := bedroomAccuracy(t, sc, w.ResultClean())

	items := OracleFeedback(sc, w.Result(), 150, 11)
	if len(items) == 0 {
		t.Fatal("oracle should produce feedback")
	}
	w.AddFeedback(items...)
	steps, err := w.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("feedback must re-trigger transducers")
	}
	after := bedroomAccuracy(t, sc, w.ResultClean())
	if after < before {
		t.Errorf("bedroom accuracy regressed after feedback: %.3f -> %.3f", before, after)
	}
}

// bedroomAccuracy measures the fraction of non-null bedroom cells that match
// ground truth among addressable rows.
func bedroomAccuracy(t *testing.T, sc *datagen.Scenario, res *relation.Relation) float64 {
	t.Helper()
	si := res.Schema.AttrIndex("street")
	pi := res.Schema.AttrIndex("postcode")
	bi := res.Schema.AttrIndex("bedrooms")
	right, total := 0, 0
	for _, tp := range res.Tuples {
		if tp[bi].IsNull() {
			continue
		}
		street, pc := tp[si].String(), tp[pi].String()
		if _, ok := sc.Oracle.Lookup(street, pc); !ok {
			continue
		}
		total++
		if sc.Oracle.CellCorrect(street, pc, "bedrooms", tp[bi]) {
			right++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(right) / float64(total)
}

func TestUserContextChangesSelection(t *testing.T) {
	sc := testScenario(t, 150)

	run := func(uc func() *Wrangler) []string {
		w := uc()
		return w.SelectedMappings()
	}
	base := func() *Wrangler {
		w := BuildScenarioWrangler(sc)
		if _, err := w.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return w
	}
	crime := run(func() *Wrangler {
		w := base()
		w.SetUserContext(CrimeAnalysisUserContext())
		if _, err := w.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return w
	})
	if len(crime) == 0 {
		t.Fatal("selection should pick mappings")
	}
	// Under the crime-analysis context, the top mapping must be one that
	// populates crimerank (a +deprivation join).
	if !strings.Contains(crime[0], "deprivation") {
		t.Errorf("crime context should rank a deprivation join first: %v", crime)
	}
}

func TestPayAsYouGoMonotoneImprovement(t *testing.T) {
	cfg := DefaultPayAsYouGoConfig()
	cfg.Scenario.NProperties = 150
	cfg.FeedbackBudget = 100
	_, _, stages, err := RunPayAsYouGo(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 4 {
		t.Fatalf("stages = %d", len(stages))
	}
	names := []string{"bootstrap", "data-context", "feedback", "user-context"}
	for i, s := range stages {
		if s.Stage != names[i] {
			t.Fatalf("stage %d = %s", i, s.Stage)
		}
	}
	// The paper's central claim: the more information provided, the better
	// the outcome. Each step improves the dimension it addresses and none
	// regresses the others (small tolerance for fusion reshuffling):
	//   data context → identification: F1 and crimerank completeness up;
	//   feedback     → correctness: value accuracy up (or already perfect);
	//   user context → selection: quality preserved, priorities applied.
	const eps = 0.02
	if stages[1].Score.F1 <= stages[0].Score.F1 {
		t.Errorf("data context should improve F1: %.3f -> %.3f",
			stages[0].Score.F1, stages[1].Score.F1)
	}
	if stages[1].Score.Completeness["crimerank"] <= stages[0].Score.Completeness["crimerank"] {
		t.Errorf("data context should improve crimerank completeness: %.3f -> %.3f",
			stages[0].Score.Completeness["crimerank"], stages[1].Score.Completeness["crimerank"])
	}
	if stages[2].Score.ValueAccuracy < stages[1].Score.ValueAccuracy {
		t.Errorf("feedback should not regress value accuracy: %.3f -> %.3f",
			stages[1].Score.ValueAccuracy, stages[2].Score.ValueAccuracy)
	}
	if stages[2].Score.ValueAccuracy < 0.98 {
		t.Errorf("after feedback, asserted values should be nearly all correct: %.3f",
			stages[2].Score.ValueAccuracy)
	}
	for i := 2; i < 4; i++ {
		if stages[i].Score.F1 < stages[i-1].Score.F1-eps {
			t.Errorf("stage %s regressed F1: %.3f -> %.3f",
				stages[i].Stage, stages[i-1].Score.F1, stages[i].Score.F1)
		}
		if stages[i].Score.ValueAccuracy < stages[i-1].Score.ValueAccuracy-eps {
			t.Errorf("stage %s regressed value accuracy: %.3f -> %.3f",
				stages[i].Stage, stages[i-1].Score.ValueAccuracy, stages[i].Score.ValueAccuracy)
		}
	}
	// crimerank completeness must be positive once the deprivation join is
	// in play, and must not collapse under the crime-analysis user context.
	if stages[3].Score.Completeness["crimerank"] <= 0 {
		t.Error("crimerank should be populated by the join mapping")
	}
	// Rendering works.
	if FormatStages(stages) == "" {
		t.Error("empty stage table")
	}
}

func TestArchitectureRendering(t *testing.T) {
	w := NewWrangler()
	arch := w.Architecture()
	for _, want := range []string{"Knowledge Base", "Vadalog Reasoner", "generic-network",
		"web-extraction", "schema-matching", "mapping-generation", "duplicate-fusion"} {
		if !strings.Contains(arch, want) {
			t.Errorf("architecture missing %q:\n%s", want, arch)
		}
	}
}

func TestCustomTransducerExtensibility(t *testing.T) {
	sc := testScenario(t, 60)
	w := BuildScenarioWrangler(sc)
	ran := false
	w.Registry().MustRegister(&transducer.Func{
		TName:     "custom-profiler",
		TActivity: "quality",
		Dep:       transducer.Dependency{Query: "?- md_result(N)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			ran = true
			return transducer.Report{Notes: []string{"profiled"}}, nil
		},
	})
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("custom transducer should have been orchestrated")
	}
}

func TestReplaceFactsIdempotent(t *testing.T) {
	k := kb.New()
	facts := []relation.Tuple{relation.NewTuple("a", 1), relation.NewTuple("b", 2)}
	a, r := replaceFacts(k, "p", nil, facts)
	if a != 2 || r != 0 {
		t.Fatalf("first replace: +%d -%d", a, r)
	}
	v := k.Version()
	a, r = replaceFacts(k, "p", nil, facts)
	if a != 0 || r != 0 || k.Version() != v {
		t.Fatalf("identical replace must be a no-op: +%d -%d v%d->v%d", a, r, v, k.Version())
	}
	a, r = replaceFacts(k, "p", nil, facts[:1])
	if a != 0 || r != 1 {
		t.Fatalf("shrinking replace: +%d -%d", a, r)
	}
}

func TestSelectedMappingsOnePerBaseSource(t *testing.T) {
	sc := testScenario(t, 100)
	w := BuildScenarioWrangler(sc)
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	sel := w.SelectedMappings()
	bases := map[string]bool{}
	for _, id := range sel {
		m := w.mappings[id]
		if bases[m.BaseSource] {
			t.Fatalf("two selected mappings share base %s: %v", m.BaseSource, sel)
		}
		bases[m.BaseSource] = true
	}
	if len(sel) < 2 {
		t.Fatalf("both portals should be represented: %v", sel)
	}
}

// TestExampleRowsCoverAllAttributes guards the wrapper-induction training
// set: under heavy noise the first listings may miss whole fields (a null
// postcode teaches nothing about postcodes), so example selection must walk
// down the page until every attribute is exemplified.
func TestExampleRowsCoverAllAttributes(t *testing.T) {
	r := relation.New(relation.NewSchema("s", "a", "b", "c"))
	r.MustAppend("a0", nil, nil)
	r.MustAppend("a1", nil, nil)
	r.MustAppend(nil, "b2", nil)
	r.MustAppend(nil, nil, nil) // useless row: skipped
	r.MustAppend(nil, nil, "c4")
	rows := exampleRows(r)
	covered := map[int]bool{}
	for _, row := range rows {
		for ai, v := range r.Tuples[row] {
			if !v.IsNull() {
				covered[ai] = true
			}
		}
	}
	if len(covered) != 3 {
		t.Fatalf("rows %v cover %d of 3 attributes", rows, len(covered))
	}
	for _, row := range rows {
		if row == 3 {
			t.Fatalf("all-null row selected: %v", rows)
		}
	}
	// High-noise scenario end-to-end: bootstrap must stay addressable.
	cfg := datagen.DefaultConfig()
	cfg.NProperties = 150
	cfg.NullRate, cfg.FormatNoiseRate, cfg.BedroomErrorRate, cfg.TypoRate = 0.2, 0.4, 0.3, 0.1
	sc := datagen.Generate(cfg)
	w := BuildScenarioWrangler(sc)
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s := sc.Oracle.ScoreResult(w.ResultClean()); s.F1 <= 0 {
		t.Fatalf("high-noise bootstrap unaddressable: %+v", s)
	}
}

// TestPropBootstrapQuiescesAcrossSeeds sweeps scenario seeds: every
// bootstrap must produce a result, quiesce, and stay quiescent on re-run —
// the orchestrator's fixpoint must not depend on one lucky data layout.
func TestPropBootstrapQuiescesAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := datagen.DefaultConfig()
		cfg.NProperties = 60
		cfg.Seed = seed
		sc := datagen.Generate(cfg)
		w := BuildScenarioWrangler(sc)
		if _, err := w.Run(context.Background()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if w.Result() == nil || w.Result().Cardinality() == 0 {
			t.Fatalf("seed %d: empty result", seed)
		}
		more, err := w.Run(context.Background())
		if err != nil || len(more) != 0 {
			t.Fatalf("seed %d: not quiescent (%d steps, %v)", seed, len(more), err)
		}
		// Data context must also re-quiesce for every seed.
		w.AddDataContext(sc.AddressRef)
		if _, err := w.Run(context.Background()); err != nil {
			t.Fatalf("seed %d data context: %v", seed, err)
		}
		more, err = w.Run(context.Background())
		if err != nil || len(more) != 0 {
			t.Fatalf("seed %d: data context not quiescent (%d steps, %v)", seed, len(more), err)
		}
	}
}

func TestTraceMentionsAllActivities(t *testing.T) {
	sc := testScenario(t, 60)
	w := BuildScenarioWrangler(sc)
	w.AddDataContext(sc.AddressRef)
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	text := transducer.TraceString(w.Trace())
	for _, act := range []string{"extraction", "matching", "mapping", "execution", "repair", "quality", "selection", "fusion", "quality-rules"} {
		if !strings.Contains(text, act) {
			t.Errorf("trace missing activity %s", act)
		}
	}
}
