package loadgen

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vada/internal/metrics"
)

// TestSmokeRun drives a short low-concurrency run end to end — steady
// state plus the kill-9/restart phase — and checks the report carries the
// BENCH schema: op classes with latencies, zero error/5xx counts, server
// counter deltas and a verified recovery.
func TestSmokeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("load run takes a few seconds")
	}
	cfg := Preset("smoke")
	cfg.Workers = 2
	cfg.Duration = 2 * time.Second
	cfg.DataDir = t.TempDir()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Totals.Count == 0 {
		t.Fatal("no operations completed")
	}
	if rep.Totals.Errors != 0 {
		t.Errorf("op errors = %d, want 0: %+v", rep.Totals.Errors, rep.Ops)
	}
	if rep.HTTP5xx != 0 {
		t.Errorf("5xx responses = %d, want 0", rep.HTTP5xx)
	}
	for op, st := range rep.Ops {
		if st.Count > 0 && st.P99Ms < st.P50Ms {
			t.Errorf("op %s: p99 %gms < p50 %gms", op, st.P99Ms, st.P50Ms)
		}
	}
	// The workload must have exercised the run engine and the durability
	// path; their server-side counters prove the instrumentation saw it.
	if rep.RunsCompleted == 0 {
		t.Error("no runs completed server-side")
	}
	if rep.ServerDelta["persist_journal_bytes_total"] == 0 {
		t.Error("no journal bytes written")
	}
	if rep.DiskBytesPerRun <= 0 {
		t.Errorf("disk bytes/run = %g, want > 0", rep.DiskBytesPerRun)
	}
	if rep.Recovery == nil || !rep.Recovery.Killed {
		t.Fatal("recovery phase did not run")
	}
	if rep.Recovery.Errors != 0 || !rep.Recovery.Verified {
		t.Errorf("recovery = %+v, want verified with no errors", rep.Recovery)
	}
	if rep.Recovery.SessionsRestored == 0 {
		t.Error("kill-9 restart restored no sessions")
	}

	// The report must round-trip as JSON (the BENCH_<n>.json contract).
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteReport(rep, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Totals.Count != rep.Totals.Count || decoded.Config.Seed != cfg.Seed {
		t.Fatalf("report did not round-trip: %+v", decoded.Totals)
	}
}

// TestConnectOp drives the connector round-trip op directly against a
// booted driver — the mix draw is probabilistic, so short runs can't be
// relied on to hit the 5% slot — and checks it runs cleanly and actually
// pushes rows through the connector subsystem (the server-side connect
// counters move).
func TestConnectOp(t *testing.T) {
	cfg := Preset("smoke")
	cfg.Connect = true
	d := &driver{
		cfg:    cfg,
		client: metrics.NewRegistry(),
		http:   &http.Client{Timeout: 30 * time.Second},
	}
	if err := d.boot(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer d.srv.Close()
	defer d.ts.Close()

	// The first call finds an empty session pool and falls back to
	// opCreate; the rest do the ingest/export round-trip.
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < 5; i++ {
		d.opConnect(rng)
	}
	snap := d.client.Snapshot()
	if got := snap.Counters[metrics.Name("ops_total", "op", "connect")]; got != 4 {
		t.Fatalf("connect ops = %d, want 4 (counters: %v)", got, snap.Counters)
	}
	if errs := snap.Counters[metrics.Name("op_errors_total", "op", "connect")]; errs != 0 {
		t.Fatalf("connect op errors = %d, want 0", errs)
	}
	if fives := snap.Counters["http_5xx_total"]; fives != 0 {
		t.Fatalf("5xx responses = %d, want 0", fives)
	}
	server, err := d.metricz()
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	for name, v := range server.Counters {
		if v > 0 && strings.HasPrefix(name, "connect_rows_total") {
			moved = true
		}
	}
	if !moved {
		t.Errorf("connector counters did not move: %+v", server.Counters)
	}
}

// TestAdviseOp drives the advisor loop op directly against a booted driver
// and checks it runs cleanly and actually exercises the advisor surface
// (the server-side advise ranking counters move).
func TestAdviseOp(t *testing.T) {
	cfg := Preset("smoke")
	cfg.Advise = true
	d := &driver{
		cfg:    cfg,
		client: metrics.NewRegistry(),
		http:   &http.Client{Timeout: 30 * time.Second},
	}
	if err := d.boot(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer d.srv.Close()
	defer d.ts.Close()

	// First call falls back to opCreate on the empty pool; the rest fetch
	// suggestions and accept any feedback-batch action they carry.
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < 5; i++ {
		d.opAdvise(rng)
	}
	snap := d.client.Snapshot()
	if got := snap.Counters[metrics.Name("ops_total", "op", "advise")]; got != 4 {
		t.Fatalf("advise ops = %d, want 4 (counters: %v)", got, snap.Counters)
	}
	if errs := snap.Counters[metrics.Name("op_errors_total", "op", "advise")]; errs != 0 {
		t.Fatalf("advise op errors = %d, want 0", errs)
	}
	if fives := snap.Counters["http_5xx_total"]; fives != 0 {
		t.Fatalf("5xx responses = %d, want 0", fives)
	}
	server, err := d.metricz()
	if err != nil {
		t.Fatal(err)
	}
	if server.Counters["advise_rank_total"] == 0 {
		t.Errorf("advisor counters did not move: %+v", server.Counters)
	}
}

// TestDeterministicSeed checks two runs with the same seed draw the same
// op sequence per worker (same op counts), which is what makes BENCH runs
// comparable across PRs.
func TestDeterministicSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("load run takes a few seconds")
	}
	run := func() map[string]int64 {
		cfg := Preset("smoke")
		cfg.Workers = 1
		cfg.Duration = 1200 * time.Millisecond
		cfg.Recovery = false
		cfg.Seed = 7
		cfg.DataDir = t.TempDir()
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int64{}
		for op, st := range rep.Ops {
			counts[op] = st.Count
		}
		return counts
	}
	a, b := run(), run()
	// Wall-clock cutoffs mean the tails differ; the leading op mix must
	// agree. Compare total spread loosely: every op class present in both.
	for op := range a {
		if b[op] == 0 && a[op] > 3 {
			t.Errorf("op %s: %d ops in run A, none in run B", op, a[op])
		}
	}
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("empty op sets: %v / %v", a, b)
	}
}
