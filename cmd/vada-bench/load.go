package main

import (
	"fmt"
	"sort"
	"time"

	"vada/internal/loadgen"
)

// loadOptions bundles the -exp load flags.
type loadOptions struct {
	preset      string
	seed        int64
	workers     int
	duration    time.Duration
	recovery    bool
	strict      bool
	trace       bool
	traceDump   string
	connect     bool
	advise      bool
	groupWindow time.Duration
	groupMax    int
	rowDiffs    bool
	baseline    bool
	notes       string
	out         string
}

// runLoad is the service benchmark: a closed-loop workload over the
// self-hosted server, reported as the BENCH_<n>.json schema. strict turns
// any error-class count (op errors, 5xx, recovery failures, missing
// traces) into a non-zero exit — the CI smoke gate.
func runLoad(o loadOptions) error {
	cfg := loadgen.Preset(o.preset)
	cfg.Seed = o.seed
	if o.workers > 0 {
		cfg.Workers = o.workers
	}
	if o.duration > 0 {
		cfg.Duration = o.duration
	}
	cfg.Recovery = o.recovery
	cfg.Trace = o.trace
	cfg.TraceDump = o.traceDump
	cfg.Connect = o.connect
	cfg.Advise = o.advise
	cfg.GroupWindow = o.groupWindow
	cfg.GroupMax = o.groupMax
	cfg.RowDiffs = o.rowDiffs
	cfg.CompareBaseline = o.baseline
	cfg.Notes = o.notes

	fmt.Printf("load benchmark: preset %s, %d workers, %s steady state, seed %d, recovery %v, trace %v, connect %v, advise %v, group window %s, row diffs %v\n",
		cfg.Name, cfg.Workers, cfg.Duration, cfg.Seed, cfg.Recovery, cfg.Trace, cfg.Connect, cfg.Advise, cfg.GroupWindow, cfg.RowDiffs)
	rep, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}
	printLoadReport(rep)
	if o.out != "" {
		if err := loadgen.WriteReport(rep, o.out); err != nil {
			return fmt.Errorf("writing %s: %w", o.out, err)
		}
		fmt.Printf("\nreport written to %s\n", o.out)
	}
	if o.strict {
		bad := rep.Totals.Errors + rep.HTTP5xx
		if rep.Recovery != nil {
			bad += rep.Recovery.Errors
		}
		if rep.Recovery != nil && !rep.Recovery.Verified {
			return fmt.Errorf("load: recovery verification failed: %+v", rep.Recovery)
		}
		if cfg.Trace && rep.RunsMissingTrace > 0 {
			return fmt.Errorf("load: %d of %d plan runs lost their trace",
				rep.RunsMissingTrace, rep.RunsTraced+rep.RunsMissingTrace)
		}
		if bad != 0 {
			return fmt.Errorf("load: %d error-class events (op errors %d, 5xx %d)",
				bad, rep.Totals.Errors, rep.HTTP5xx)
		}
		// The durability regression gate: with a baseline pass in the same
		// run, the optimised configuration must not cost more per run.
		if rep.Baseline != nil {
			if rep.FsyncsPerRun > rep.Baseline.FsyncsPerRun {
				return fmt.Errorf("load: fsyncs/run regressed: %.2f vs baseline %.2f",
					rep.FsyncsPerRun, rep.Baseline.FsyncsPerRun)
			}
			if rep.DiskBytesPerRun > rep.Baseline.DiskBytesPerRun {
				return fmt.Errorf("load: disk bytes/run regressed: %.0f vs baseline %.0f",
					rep.DiskBytesPerRun, rep.Baseline.DiskBytesPerRun)
			}
		}
	}
	return nil
}

// printLoadReport renders the human-readable table next to the JSON.
func printLoadReport(rep *loadgen.Report) {
	fmt.Printf("\n%-16s %8s %7s %9s %9s %9s %7s\n",
		"op", "count", "errors", "ops/s", "p50 ms", "p99 ms", "max ms")
	ops := make([]string, 0, len(rep.Ops))
	for op := range rep.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := rep.Ops[op]
		fmt.Printf("%-16s %8d %7d %9.1f %9.2f %9.2f %7.0f\n",
			op, st.Count, st.Errors, st.ThroughputPerS, st.P50Ms, st.P99Ms, st.MaxMs)
	}
	fmt.Printf("%-16s %8d %7d %9.1f\n", "total", rep.Totals.Count, rep.Totals.Errors, rep.Totals.ThroughputPerS)
	fmt.Printf("\nhttp 5xx: %d   runs completed: %d   fsyncs/run: %.2f   disk bytes/run: %.0f   sse drops: %d\n",
		rep.HTTP5xx, rep.RunsCompleted, rep.FsyncsPerRun, rep.DiskBytesPerRun, rep.SSEDropped)
	if b := rep.Baseline; b != nil {
		fmt.Printf("baseline (%s): fsyncs/run %.2f -> %.2f, disk bytes/run %.0f -> %.0f\n",
			b.Name, b.FsyncsPerRun, rep.FsyncsPerRun, b.DiskBytesPerRun, rep.DiskBytesPerRun)
	}
	if rep.Config.Trace {
		fmt.Printf("traces: %d plan runs traced, %d missing\n", rep.RunsTraced, rep.RunsMissingTrace)
	}
	if rep.Recovery != nil {
		fmt.Printf("recovery: killed=%v restart=%.1fms sessions %d -> %d verified=%v errors=%d\n",
			rep.Recovery.Killed, rep.Recovery.RestartMs, rep.Recovery.SessionsBefore,
			rep.Recovery.SessionsRestored, rep.Recovery.Verified, rep.Recovery.Errors)
	}
}
