// Command vada-server is the multi-tenant wrangling service: any number of
// concurrent pay-as-you-go sessions (each the four-panel demonstration of
// Figure 3) behind a versioned JSON API, plus the single-page UI and the
// browsable orchestration trace.
//
//	vada-server -addr :8080 -max-sessions 64 -idle-timeout 30m -run-workers 8
//
// Endpoints:
//
//	GET    /                                   the single-page UI
//	GET    /api/v1/healthz                     server health: sessions, run-engine load
//	POST   /api/v1/sessions                    create a session {"name","n","seed"}
//	GET    /api/v1/sessions                    list session states
//	GET    /api/v1/sessions/{id}               session state
//	DELETE /api/v1/sessions/{id}               close the session (cancels its runs)
//	POST   /api/v1/sessions/{id}/bootstrap     step 1: automatic bootstrapping
//	POST   /api/v1/sessions/{id}/datacontext   step 2: associate reference data
//	POST   /api/v1/sessions/{id}/feedback      step 3: oracle feedback (?budget=N) or JSON items
//	POST   /api/v1/sessions/{id}/usercontext   step 4: ?model=crime|size
//	GET    /api/v1/sessions/{id}/result        result rows (?limit=&offset=, paginated)
//	GET    /api/v1/sessions/{id}/trace         orchestration trace (text)
//	GET    /api/v1/sessions/{id}/state         session state (alias)
//	GET    /api/v1/sessions/{id}/runs          list the session's async runs
//	GET    /api/v1/sessions/{id}/runs/{rid}    poll one run
//	DELETE /api/v1/sessions/{id}/runs/{rid}    cancel a queued or in-flight run
//	GET    /api/v1/sessions/{id}/events        stage events over SSE (replays history)
//
// Every stage POST accepts ?async=1: instead of blocking until the stage
// quiesces, the server enqueues it on the run engine and answers
// 202 Accepted with a Location header naming the run resource to poll.
// Runs of one session execute in submission order; runs of independent
// sessions spread across the worker pool.
//
// Sessions are independent: each wraps its own Wrangler and scenario, holds
// its own lock, and wrangles fully in parallel with every other session.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"mime"
	"net/http"
	"strconv"
	"time"

	"vada"
)

// maxResultPageSize bounds one result page; larger limits are clamped.
const maxResultPageSize = 1000

// server holds the session manager, the async run engine and the
// per-session scenario defaults.
type server struct {
	mgr         *vada.SessionManager
	runs        *vada.RunEngine
	defaultN    int
	defaultSeed int64
	maxN        int
	started     time.Time
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 300, "default scenario size for new sessions")
	maxN := flag.Int("max-n", 2000, "largest scenario size a client may request")
	seed := flag.Int64("seed", 1, "default scenario seed for new sessions")
	maxSessions := flag.Int("max-sessions", 64, "live session cap (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Minute, "evict sessions idle this long (0 = never)")
	runWorkers := flag.Int("run-workers", 8, "async run engine worker-pool size")
	runQueue := flag.Int("run-queue", 256, "async run queue depth (0 = unlimited)")
	flag.Parse()

	s := &server{
		runs: vada.NewRunEngine(
			vada.WithRunWorkers(*runWorkers),
			vada.WithRunQueueDepth(*runQueue),
		),
		defaultN:    *n,
		defaultSeed: *seed,
		maxN:        *maxN,
		started:     time.Now(),
	}
	s.mgr = vada.NewSessionManager(
		vada.WithMaxSessions(*maxSessions),
		vada.WithEvictHook(func(sess *vada.Session) {
			if n := s.runs.CancelSession(sess.ID()); n > 0 {
				log.Printf("vada-server: session %s closed (%d runs cancelled)", sess.ID(), n)
				return
			}
			log.Printf("vada-server: session %s closed", sess.ID())
		}),
	)
	if *idleTimeout > 0 {
		go func() {
			for range time.Tick(*idleTimeout / 4) {
				for _, id := range s.mgr.EvictIdle(*idleTimeout) {
					log.Printf("vada-server: session %s evicted (idle)", id)
				}
			}
		}()
	}

	log.Printf("vada-server: serving /api/v1/sessions on %s (cap %d)", *addr, *maxSessions)
	log.Fatal(http.ListenAndServe(*addr, s.routes()))
}

// routes wires the versioned API.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /api/v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /api/v1/sessions", s.handleList)
	mux.HandleFunc("GET /api/v1/sessions/{id}", s.handleState)
	mux.HandleFunc("GET /api/v1/sessions/{id}/state", s.handleState)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", s.handleClose)
	mux.HandleFunc("POST /api/v1/sessions/{id}/bootstrap", s.handleBootstrap)
	mux.HandleFunc("POST /api/v1/sessions/{id}/datacontext", s.handleDataContext)
	mux.HandleFunc("POST /api/v1/sessions/{id}/feedback", s.handleFeedback)
	mux.HandleFunc("POST /api/v1/sessions/{id}/usercontext", s.handleUserContext)
	mux.HandleFunc("GET /api/v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/sessions/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /api/v1/sessions/{id}/runs", s.handleRunList)
	mux.HandleFunc("GET /api/v1/sessions/{id}/runs/{rid}", s.handleRunGet)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}/runs/{rid}", s.handleRunCancel)
	mux.HandleFunc("GET /api/v1/sessions/{id}/events", s.handleEvents)
	return mux
}

// createRequest is the POST /api/v1/sessions body; zero values take the
// server defaults.
type createRequest struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
}

func (s *server) handleCreate(rw http.ResponseWriter, r *http.Request) {
	req := createRequest{N: s.defaultN, Seed: s.defaultSeed}
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, "bad session config JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if req.N <= 0 {
		req.N = s.defaultN
	}
	if s.maxN > 0 && req.N > s.maxN {
		http.Error(rw, fmt.Sprintf("scenario size %d exceeds the server limit %d", req.N, s.maxN),
			http.StatusBadRequest)
		return
	}
	// Cheap pre-check so a full server rejects before scenario generation;
	// Create remains the authoritative (race-free) gate.
	if s.mgr.AtCap() {
		writeError(rw, vada.ErrSessionLimit)
		return
	}
	cfg := vada.DefaultScenarioConfig()
	cfg.NProperties = req.N
	cfg.Seed = req.Seed
	sc := vada.GenerateScenario(cfg)
	sess, err := s.mgr.Create(vada.BuildScenarioWrangler(sc),
		vada.WithSessionName(req.Name), vada.WithScenario(sc, req.Seed))
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSONStatus(rw, http.StatusCreated, sess.State())
}

func (s *server) handleList(rw http.ResponseWriter, _ *http.Request) {
	sessions := s.mgr.List()
	states := make([]vada.SessionState, len(sessions))
	for i, sess := range sessions {
		states[i] = sess.State()
	}
	writeJSON(rw, map[string]any{"total": len(states), "sessions": states})
}

func (s *server) handleState(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSON(rw, sess.State())
}

func (s *server) handleClose(rw http.ResponseWriter, r *http.Request) {
	// Manager.Close fires the evict hook, which cancels the session's
	// in-flight and queued runs — the same path idle eviction takes.
	if err := s.mgr.Close(r.PathValue("id")); err != nil {
		writeError(rw, err)
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}

// asyncRequested reports whether a stage POST opts into the 202 run flow.
func asyncRequested(r *http.Request) bool {
	switch r.URL.Query().Get("async") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// dispatchStage executes one stage invocation either synchronously (the
// pre-async behaviour: block until quiescence, answer the stage event) or,
// with ?async=1, as a run resource: enqueue on the engine and answer
// 202 Accepted with the run snapshot and its Location to poll. The stage
// closure must capture everything it needs from the request — it outlives
// the request in the async path.
func (s *server) dispatchStage(rw http.ResponseWriter, r *http.Request, sess *vada.Session, stage string,
	fn func(ctx context.Context) (vada.SessionEvent, error)) {
	if !asyncRequested(r) {
		ev, err := fn(r.Context())
		writeEvent(rw, ev, err)
		return
	}
	run, err := s.runs.Submit(sess.ID(), stage, fn)
	if err != nil {
		writeError(rw, err)
		return
	}
	rw.Header().Set("Location", fmt.Sprintf("/api/v1/sessions/%s/runs/%s", sess.ID(), run.ID))
	writeJSONStatus(rw, http.StatusAccepted, run)
}

func (s *server) handleBootstrap(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	s.dispatchStage(rw, r, sess, "bootstrap", sess.Bootstrap)
}

func (s *server) handleDataContext(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	// nil relation: the session defaults to its scenario's reference data.
	s.dispatchStage(rw, r, sess, "data-context", func(ctx context.Context) (vada.SessionEvent, error) {
		return sess.AddDataContext(ctx, nil)
	})
}

func (s *server) handleFeedback(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	budget := intQuery(r, "budget", 100)
	var items []vada.FeedbackItem
	if mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); mt == "application/json" {
		if err := json.NewDecoder(r.Body).Decode(&items); err != nil {
			http.Error(rw, "bad feedback JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	s.dispatchStage(rw, r, sess, "feedback", func(ctx context.Context) (vada.SessionEvent, error) {
		return sess.AddFeedback(ctx, items, budget)
	})
}

func (s *server) handleUserContext(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	uc, err := vada.UserContextByName(r.URL.Query().Get("model"))
	if err != nil {
		writeError(rw, err)
		return
	}
	s.dispatchStage(rw, r, sess, "user-context", func(ctx context.Context) (vada.SessionEvent, error) {
		return sess.SetUserContext(ctx, uc)
	})
}

func (s *server) handleRunList(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	list := s.runs.List(id)
	if len(list) == 0 {
		// No retained runs: distinguish a live session without runs (empty
		// 200) from an unknown session ID (404). Closed sessions keep their
		// retained runs listable, matching GET .../runs/{rid}.
		if _, err := s.mgr.Get(id); err != nil {
			writeError(rw, err)
			return
		}
	}
	writeJSON(rw, map[string]any{"total": len(list), "runs": list})
}

// sessionRun resolves a run scoped to its session path, so run IDs cannot
// be probed across sessions.
func (s *server) sessionRun(r *http.Request) (vada.Run, error) {
	run, err := s.runs.Get(r.PathValue("rid"))
	if err != nil {
		return vada.Run{}, err
	}
	if run.SessionID != r.PathValue("id") {
		return vada.Run{}, fmt.Errorf("%w: %q", vada.ErrRunNotFound, r.PathValue("rid"))
	}
	return run, nil
}

func (s *server) handleRunGet(rw http.ResponseWriter, r *http.Request) {
	run, err := s.sessionRun(r)
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSON(rw, run)
}

func (s *server) handleRunCancel(rw http.ResponseWriter, r *http.Request) {
	if _, err := s.sessionRun(r); err != nil {
		writeError(rw, err)
		return
	}
	run, err := s.runs.Cancel(r.PathValue("rid"))
	if err != nil {
		writeError(rw, err)
		return
	}
	// 202: cancellation of a running stage completes when the stage next
	// observes its context; poll the resource for the terminal state.
	writeJSONStatus(rw, http.StatusAccepted, run)
}

// handleEvents streams the session's stage events as server-sent events:
// history is replayed on connect (resumable via Last-Event-ID or ?after=seq),
// then live events flow until the client disconnects or the session closes.
func (s *server) handleEvents(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	flusher, ok := rw.(http.Flusher)
	if !ok {
		http.Error(rw, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	after := intQuery(r, "after", 0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			after = n
		}
	}
	history, events, cancel := sess.Subscribe(64)
	defer cancel()
	rw.Header().Set("Content-Type", "text/event-stream")
	rw.Header().Set("Cache-Control", "no-cache")
	rw.Header().Set("Connection", "keep-alive")
	rw.WriteHeader(http.StatusOK)
	for _, ev := range history {
		if ev.Seq > after {
			writeSSE(rw, ev)
		}
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-events:
			if !ok { // session closed
				fmt.Fprint(rw, "event: close\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			writeSSE(rw, ev)
			flusher.Flush()
		}
	}
}

// writeSSE renders one stage event in SSE wire format; the event id is the
// session sequence number, so reconnecting clients resume via Last-Event-ID.
func writeSSE(rw http.ResponseWriter, ev vada.SessionEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		log.Printf("encoding SSE event: %v", err)
		return
	}
	fmt.Fprintf(rw, "id: %d\nevent: stage\ndata: %s\n\n", ev.Seq, data)
}

func (s *server) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	writeJSON(rw, map[string]any{
		"status":    "ok",
		"uptime_s":  int(time.Since(s.started).Seconds()),
		"sessions":  s.mgr.Len(),
		"run_stats": s.runs.Stats(),
	})
}

func (s *server) handleResult(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	res, err := sess.Result()
	if err != nil {
		writeError(rw, err)
		return
	}
	limit := intQuery(r, "limit", 100)
	offset := intQuery(r, "offset", 0)
	if limit <= 0 {
		limit = 100
	}
	if limit > maxResultPageSize {
		limit = maxResultPageSize
	}
	if offset < 0 {
		offset = 0
	}
	total := res.Cardinality()
	rows := make([]map[string]string, 0, min(limit, max(0, total-offset)))
	for i := offset; i < total && len(rows) < limit; i++ {
		row := map[string]string{}
		for j, a := range res.Schema.Attrs {
			row[a.Name] = res.Tuples[i][j].String()
		}
		rows = append(rows, row)
	}
	out := map[string]any{"total": total, "offset": offset, "limit": limit, "rows": rows}
	if next := offset + len(rows); next < total {
		out["next_offset"] = next
	}
	writeJSON(rw, out)
}

func (s *server) handleTrace(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(rw, vada.TraceString(sess.Trace()))
}

func (s *server) handleIndex(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(rw, r)
		return
	}
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(rw, indexHTML)
}

// writeEvent renders a stage outcome or maps its error onto a status code.
func writeEvent(rw http.ResponseWriter, ev vada.SessionEvent, err error) {
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSON(rw, ev)
}

// writeError maps the API's sentinel errors onto HTTP status codes.
func writeError(rw http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, vada.ErrSessionNotFound), errors.Is(err, vada.ErrNoResult),
		errors.Is(err, vada.ErrRunNotFound):
		status = http.StatusNotFound
	case errors.Is(err, vada.ErrUnknownUserContext), errors.Is(err, vada.ErrNoDataContext):
		status = http.StatusBadRequest
	case errors.Is(err, vada.ErrSessionLimit), errors.Is(err, vada.ErrRunQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, vada.ErrSessionClosed):
		status = http.StatusGone
	case errors.Is(err, vada.ErrRunEngineClosed):
		status = http.StatusServiceUnavailable
	}
	http.Error(rw, err.Error(), status)
}

func intQuery(r *http.Request, key string, def int) int {
	if v := r.URL.Query().Get(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func writeJSON(rw http.ResponseWriter, v any) {
	writeJSONStatus(rw, http.StatusOK, v)
}

func writeJSONStatus(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

// indexHTML is the single-page mirror of Figure 3, now session-aware and
// push-driven: it creates a session via /api/v1, submits every step as an
// async run (202 + run resource), and refreshes on the session's SSE event
// stream instead of poll-refreshing.
const indexHTML = `<!DOCTYPE html>
<html><head><title>VADA — pay-as-you-go data wrangling</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 1.5em; max-width: 72em; }
 h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.2em; }
 button { margin-right: .5em; padding: .4em .8em; }
 table { border-collapse: collapse; font-size: .85em; margin-top: .5em; }
 td, th { border: 1px solid #ccc; padding: .2em .5em; text-align: left; }
 pre { background: #f6f6f6; padding: .8em; overflow-x: auto; font-size: .8em; }
 .row { display: flex; gap: 2em; flex-wrap: wrap; }
 .col { flex: 1; min-width: 24em; }
 #sid { color: #666; font-size: .85em; }
</style></head>
<body>
<h1>VADA — pay-as-you-go data wrangling (SIGMOD'17 demonstration)</h1>
<p>Work through the four steps of the demonstration; each one adds information
and re-triggers exactly the transducers whose input dependencies now hold.
Steps run asynchronously on the server's run engine; this page refreshes when
the session's event stream reports the stage finished. Every browser tab gets
its own wrangling session.</p>
<p id="sid">(creating session…)</p>
<div>
 <button onclick="step('bootstrap')">1&nbsp;Bootstrap</button>
 <button onclick="step('datacontext')">2&nbsp;Add data context</button>
 <button onclick="step('feedback?budget=100')">3&nbsp;Give feedback</button>
 <button onclick="step('usercontext?model=crime')">4a&nbsp;Crime user context</button>
 <button onclick="step('usercontext?model=size')">4b&nbsp;Size user context</button>
 <button onclick="closeSession()">Close session</button>
</div>
<div class="row">
 <div class="col"><h2>Stages</h2><pre id="stages">(none yet)</pre>
  <h2>Selected mappings</h2><pre id="selected"></pre></div>
 <div class="col"><h2>Runs</h2><pre id="runs">(none yet)</pre>
  <h2>Sessions on this server</h2><pre id="sessions"></pre></div>
</div>
<h2>Result (first rows)</h2>
<div id="result">(bootstrap first)</div>
<h2>Orchestration trace</h2>
<pre id="trace"></pre>
<script>
let sid = null, es = null;
const api = p => '/api/v1/sessions' + p;
async function ensureSession() {
  if (sid) return sid;
  const resp = await fetch(api(''), {method: 'POST', headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({name: 'ui'})});
  sid = (await resp.json()).id;
  document.getElementById('sid').textContent = 'session ' + sid;
  es = new EventSource(api('/' + sid + '/events'));
  es.addEventListener('stage', () => refresh());
  es.addEventListener('close', () => es.close());
  return sid;
}
async function refreshRuns() {
  if (!sid) return;
  const resp = await fetch(api('/' + sid + '/runs'));
  if (!resp.ok) return;
  const data = await resp.json();
  document.getElementById('runs').textContent = (data.runs||[]).map(r =>
     r.id + '  ' + r.stage.padEnd(14) + r.state +
     (r.error ? ' (' + r.error + ')' : '')).join('\n') || '(none yet)';
}
async function refresh() {
  if (!sid) return;
  const st = await (await fetch(api('/' + sid))).json();
  document.getElementById('selected').textContent = (st.selected_mappings||[]).join('\n');
  document.getElementById('stages').textContent = (st.events||[]).map(e =>
     e.stage.padEnd(14) + (e.score ? ' F1=' + e.score.F1.toFixed(3) +
     ' val-acc=' + e.score.ValueAccuracy.toFixed(3) : '')).join('\n') || '(none yet)';
  document.getElementById('trace').textContent = await (await fetch(api('/' + sid + '/trace'))).text();
  const all = await (await fetch(api(''))).json();
  document.getElementById('sessions').textContent = (all.sessions||[]).map(s =>
     s.id + (s.name ? ' (' + s.name + ')' : '') + ' — ' + (s.events||[]).length + ' stages, ' +
     s.result_rows + ' rows').join('\n');
  await refreshRuns();
  const res = await fetch(api('/' + sid + '/result?limit=25'));
  if (res.ok) {
    const data = await res.json();
    if (data.rows.length) {
      const cols = Object.keys(data.rows[0]).sort();
      let html = '<table><tr>' + cols.map(c => '<th>'+c+'</th>').join('') + '</tr>';
      for (const r of data.rows)
        html += '<tr>' + cols.map(c => '<td>'+(r[c]||'∅')+'</td>').join('') + '</tr>';
      html += '</table><p>' + data.total + ' rows total</p>';
      document.getElementById('result').innerHTML = html;
    }
  }
}
async function step(path) {
  await ensureSession();
  // Submit as an async run; the SSE stage event triggers the refresh.
  const resp = await fetch(api('/' + sid + '/' + path + (path.includes('?') ? '&' : '?') + 'async=1'),
    {method: 'POST'});
  if (!resp.ok) {
    document.getElementById('runs').textContent =
      'submit rejected: ' + resp.status + ' ' + (await resp.text()).trim();
    return;
  }
  const run = await resp.json();
  await refreshRuns();
  // Failed or cancelled runs emit no stage event, so also poll this run
  // until it is terminal and refresh then — the panel always resolves.
  const runURL = api('/' + sid + '/runs/' + run.id);
  const timer = setInterval(async () => {
    if (!sid) { clearInterval(timer); return; }
    const rr = await fetch(runURL);
    if (!rr.ok) { clearInterval(timer); return; }
    const r = await rr.json();
    if (r.state === 'succeeded' || r.state === 'failed' || r.state === 'cancelled') {
      clearInterval(timer);
      await refresh();
    } else {
      await refreshRuns();
    }
  }, 500);
}
async function closeSession() {
  if (!sid) return;
  if (es) { es.close(); es = null; }
  await fetch(api('/' + sid), {method: 'DELETE'});
  sid = null;
  document.getElementById('sid').textContent = '(session closed — reload to start another)';
}
ensureSession().then(refresh);
</script>
</body></html>
`
