// Command vada-server is the thin binary over internal/server: flag
// parsing, structured-logger construction, the idle-eviction ticker and
// graceful signal-driven shutdown. All service behaviour — routes,
// durability, tracing, metrics — lives in the package, so tests and the
// load generator host the identical wiring in-process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vada/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cfg := server.Config{}
	flag.IntVar(&cfg.N, "n", 300, "default scenario size for new sessions")
	flag.IntVar(&cfg.MaxN, "max-n", 2000, "largest scenario size a client may request")
	flag.Int64Var(&cfg.Seed, "seed", 1, "default scenario seed for new sessions")
	flag.IntVar(&cfg.MaxSessions, "max-sessions", 64, "live session cap (0 = unlimited)")
	flag.IntVar(&cfg.SessionShards, "session-shards", 0, "session store stripe count (0 = default)")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Minute, "evict sessions idle this long (0 = never)")
	flag.IntVar(&cfg.RunWorkers, "run-workers", 8, "async run engine worker-pool size")
	flag.IntVar(&cfg.RunQueue, "run-queue", 256, "async run queue depth (0 = unlimited)")
	flag.IntVar(&cfg.RunSessionQueue, "run-session-queue", 16, "pending async runs one session may hold (0 = unlimited)")
	flag.DurationVar(&cfg.SSEKeepAlive, "sse-keepalive", 15*time.Second, "SSE keep-alive comment interval (0 = disabled)")
	flag.DurationVar(&cfg.SSEWriteTimeout, "sse-write-timeout", 10*time.Second, "SSE per-write deadline (0 = none)")
	flag.StringVar(&cfg.DataDir, "data-dir", "", "persist sessions to this directory and restore them on boot (\"\" = ephemeral)")
	flag.BoolVar(&cfg.Journal, "journal", true, "incremental durability: append per-stage/per-run records to <id>.vjournal instead of rewriting the snapshot (requires -data-dir)")
	flag.IntVar(&cfg.JournalMaxRecords, "journal-max-records", 512, "compact a session's journal into a fresh snapshot after this many records (0 = no record threshold)")
	flag.Int64Var(&cfg.JournalMaxBytes, "journal-max-bytes", 8<<20, "compact a session's journal after this many bytes since the last compaction (0 = no byte threshold)")
	flag.DurationVar(&cfg.JournalGroupWindow, "journal-group-window", 0, "group-commit latency window: journal appends landing within it share one fsync (0 = fsync per append)")
	flag.IntVar(&cfg.JournalGroupMax, "journal-group-max", 0, "appends one group-commit batch may absorb (0 = default)")
	flag.BoolVar(&cfg.JournalRowDiffs, "journal-row-diffs", false, "journal relation replacements as row-level diffs instead of wholesale relation clones")
	flag.BoolVar(&cfg.RestoreClosed, "restore-closed", false, "restore explicitly DELETEd sessions archived under <data-dir>/closed/ at boot")
	flag.BoolVar(&cfg.Trace, "trace", true, "record per-request span trees, browsable via GET /api/v1/traces")
	flag.IntVar(&cfg.TraceCapacity, "trace-max", 0, "traces retained in memory before the oldest is evicted (0 = default)")
	flag.IntVar(&cfg.TraceMaxSpans, "trace-max-spans", 0, "spans retained per trace (0 = default)")
	flag.DurationVar(&cfg.TraceSlowThreshold, "trace-slow-threshold", 2*time.Second, "log any span at or over this duration as a structured warning (0 = off)")
	flag.BoolVar(&cfg.Pprof, "pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.DurationVar(&cfg.RuntimeSampleEvery, "runtime-sample-every", 0, "runtime gauge (goroutines, heap, GC) sampling interval (0 = default)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	logger, err := buildLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vada-server: %v\n", err)
		os.Exit(2)
	}
	// Default too, so free-standing helpers (response encoders) and any
	// library slog use share the configured handler.
	slog.SetDefault(logger)
	cfg.Logger = logger

	s, err := server.New(cfg)
	if err != nil {
		logger.Error("startup failed", "error", err)
		os.Exit(1)
	}
	if *idleTimeout > 0 {
		go func() {
			for range time.Tick(*idleTimeout / 4) {
				for _, id := range s.EvictIdle(*idleTimeout) {
					logger.Info("session evicted (idle)", "session", id)
				}
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "error", err)
		}
	}()
	logger.Info("serving /api/v1/sessions", "addr", *addr,
		"max_sessions", cfg.MaxSessions, "data_dir", cfg.DataDir,
		"trace", cfg.Trace, "pprof", cfg.Pprof)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listen failed", "error", err)
		os.Exit(1)
	}
	// Wait for Shutdown to finish draining in-flight handlers before the
	// final snapshot sweep — a stage a client got a 200 for must be in it.
	<-drained
	s.Close() // drain runs, snapshot every session
	logger.Info("shutdown complete")
}

// buildLogger constructs the process logger from the -log-format and
// -log-level flags.
func buildLogger(w *os.File, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}
