// Package server is the multi-tenant wrangling service: any number of
// concurrent pay-as-you-go sessions (each the four-panel demonstration of
// Figure 3) behind a versioned JSON API, plus the single-page UI and the
// browsable orchestration trace. cmd/vada-server is the thin flag-parsing
// binary over this package; internal/loadgen self-hosts the same wiring to
// drive benchmark workloads (including abrupt kill-9/restart phases)
// in-process.
//
//	vada-server -addr :8080 -max-sessions 64 -idle-timeout 30m -run-workers 8
//
// Endpoints:
//
//	GET    /                                     the single-page UI
//	GET    /api/v1/healthz                       server health: sessions, run-engine load, persist stats, metrics roll-up
//	GET    /api/v1/metricz                       full metrics snapshot: counters, gauges, latency histograms
//	GET    /api/v1/stages                        stage discovery: every registered stage
//	POST   /api/v1/sessions                      create a session {"name","n","seed"}
//	GET    /api/v1/sessions                      list session states
//	GET    /api/v1/sessions/{id}                 session state
//	DELETE /api/v1/sessions/{id}                 close the session (cancels its runs)
//	POST   /api/v1/sessions/{id}/stages/{name}   invoke any registered stage (body = JSON payload)
//	POST   /api/v1/sessions/{id}/plans           run an ordered stage plan as one run (always async)
//	POST   /api/v1/sessions/{id}/bootstrap       legacy alias of stages/bootstrap
//	POST   /api/v1/sessions/{id}/datacontext     legacy alias of stages/data-context
//	POST   /api/v1/sessions/{id}/feedback        legacy alias of stages/feedback (?budget=N or JSON items)
//	POST   /api/v1/sessions/{id}/usercontext     legacy alias of stages/user-context (?model=crime|size)
//	GET    /api/v1/sessions/{id}/result          result rows (?limit=&offset=, paginated)
//	GET    /api/v1/sessions/{id}/trace           orchestration trace (text)
//	GET    /api/v1/sessions/{id}/state           session state (alias)
//	GET    /api/v1/sessions/{id}/runs            list the session's async runs
//	GET    /api/v1/sessions/{id}/runs/{rid}      poll one run
//	DELETE /api/v1/sessions/{id}/runs/{rid}      cancel a queued or in-flight run
//	GET    /api/v1/sessions/{id}/events          stage events + run transitions over SSE
//	GET    /api/v1/sessions/{id}/export          download the session as a snapshot envelope
//	POST   /api/v1/sessions/import               restore a session from a snapshot envelope
//	POST   /api/v1/sessions/{id}/upload          multipart file upload into the ingest stage (?role=&format=&relation=)
//	GET    /api/v1/sessions/{id}/export/{rel}    stream a relation as canonical CSV/JSONL (?format=csv|jsonl)
//
// The last two are the connector surface over real data: uploads feed CSV
// and JSON-Lines files into the session as source (or data-context)
// relations, the ingest/fetch/export/quality-report stages move data in
// plans, and the relation export route streams any knowledge-base relation
// — or the clean result — back out in canonical, byte-stable order.
//
// With -data-dir the service is durable, and with -journal (the default)
// durability is incremental: each session keeps an append-only
// <data-dir>/<id>.vjournal beside its <data-dir>/<id>.vsnap, and a
// completed stage or run appends one CRC-framed, fsynced record carrying
// only the mutation delta — O(delta) bytes instead of rewriting the whole
// snapshot envelope. When the journal crosses -journal-max-records or
// -journal-max-bytes (and on evict and graceful shutdown) it is compacted:
// folded into a fresh full snapshot and truncated. Boot recovery composes
// the last snapshot with the journal's valid prefix; a record torn by
// kill -9 mid-append is truncated, never fatal. With -journal=false the
// PR-4 behaviour remains: a full snapshot per completed run.
//
// Either way, every persisted session is restored at boot — event history,
// result and terminal run resources included — so a server killed outright
// (kill -9) loses at most the work since the last completed stage, and a
// restarted server answers GET .../result and GET .../runs/{rid} for
// pre-restart sessions identically.
//
// DELETE /api/v1/sessions/{id} garbage-collects the session's durable
// state: its snapshot is archived under <data-dir>/closed/ and the live
// .vsnap/.vjournal pair is removed, so explicitly closed sessions no
// longer resurrect on boot (opt back in with -restore-closed, which
// restores archived sessions and moves them live again). Idle-evicted
// sessions stay restorable. GET /api/v1/healthz reports persist stats:
// journaled sessions, journal records and bytes since compaction, and the
// last snapshot time.
//
// Stages are registry-driven: the four paper stages are pre-registered and
// any stage added to the server's registry is immediately invocable through
// the generic stages/{name} route, listable via stage discovery, and usable
// in plans — no per-stage handler exists any more; the legacy per-stage
// routes are thin aliases that translate their old wire formats onto the
// same path.
//
// Every stage POST accepts ?async=1: instead of blocking until the stage
// quiesces, the server enqueues it on the run engine and answers
// 202 Accepted with a Location header naming the run resource to poll.
// Plans are always asynchronous: the run resource carries per-stage
// progress (plan, stage_index, events) and the session's SSE stream
// carries every state transition (queued → running → stage k/n →
// terminal) as `transition` events alongside the `stage` events.
// Runs of one session execute in submission order; runs of independent
// sessions spread across the worker pool, and a per-session pending cap
// (-run-session-queue) answers 429 with Retry-After before one session can
// monopolise the global queue.
//
// Sessions are independent: each wraps its own Wrangler and scenario, holds
// its own lock, and wrangles fully in parallel with every other session.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vada"
)

// maxResultPageSize bounds one result page; larger limits are clamped.
const maxResultPageSize = 1000

// maxPayloadBytes bounds one stage payload or plan body.
const maxPayloadBytes = 8 << 20

// maxSnapshotBytes bounds one imported session snapshot.
const maxSnapshotBytes = 64 << 20

// snapshotExt is the on-disk suffix of persisted session snapshots.
const snapshotExt = ".vsnap"

// journalExt is the on-disk suffix of per-session append-only journals.
const journalExt = ".vjournal"

// closedDirName is the -data-dir subdirectory explicitly deleted sessions
// are archived under (see -restore-closed).
const closedDirName = "closed"

// Server holds the stage registry, the session manager, the async run
// engine, the per-session scenario defaults and the durability wiring.
// Build one with New; serve Handler(); stop with Close.
type Server struct {
	registry    *vada.StageRegistry
	mgr         *vada.SessionManager
	runs        *vada.RunEngine
	metrics     *vada.MetricsRegistry
	defaultN    int
	defaultSeed int64
	maxN        int
	started     time.Time

	// tracer records per-request span trees (nil = tracing disabled; every
	// span operation is nil-safe, so handlers never branch on it). logger is
	// the structured request/operational logger; pprof gates the
	// /debug/pprof/ routes; stopSampler stops the runtime-gauge sampler.
	tracer      *vada.Tracer
	logger      *slog.Logger
	pprof       bool
	stopSampler func()

	// sseKeepAlive is the idle interval between SSE keep-alive comments;
	// sseWriteTimeout is the per-write deadline that reaps dead client
	// connections behind proxies that never RST.
	sseKeepAlive    time.Duration
	sseWriteTimeout time.Duration

	// dataDir is where session snapshots live ("" = ephemeral). The
	// persister goroutine drains persistCh — session IDs whose runs just
	// completed — so snapshot writes never run under the engine lock.
	// persistCh is never closed (late notify hooks must not panic);
	// persistDone stops the persister, and Close's persistAll sweep covers
	// whatever hints were still queued.
	dataDir     string
	persistCh   chan string
	persistDone chan struct{}
	persistWG   sync.WaitGroup
	closeOnce   sync.Once

	// persistMu makes each capture+write atomic with respect to other
	// snapshot writers: without it, the persister's capture of a session's
	// second-to-last state could rename over the evict hook's final
	// snapshot and strand the last event until the next write.
	// lastSnapshotAt (guarded by persistMu) is surfaced in healthz.
	persistMu      sync.Mutex
	lastSnapshotAt time.Time

	// journal configuration: with journaling on, completed stages and runs
	// append O(delta) records to per-session .vjournal files instead of
	// rewriting the snapshot, and the journal is folded back into a fresh
	// snapshot at the compaction thresholds.
	journal           bool
	journalMaxRecords int
	journalMaxBytes   int64
	journalRowDiffs   bool
	snapshotPerStage  bool
	restoreClosed     bool

	// committer is the shared group-commit coordinator batching journal
	// fsyncs across sessions (nil = direct per-append fsync).
	committer *vada.GroupCommitter

	// recorders maps live session IDs to their journal recorders; deleting
	// refcounts sessions being explicitly DELETEd so the evict hook
	// garbage-collects their durable state instead of persisting it (a
	// racing duplicate DELETE must not clear the mark mid-teardown); gone
	// tombstones IDs whose files gcSession removed, so a persist already in
	// flight cannot resurrect them (cleared when the ID is re-registered).
	recMu     sync.Mutex
	recorders map[string]*vada.JournalRecorder
	delMu     sync.Mutex
	deleting  map[string]int
	gone      map[string]bool
}

// Config is the server's flag set in struct form, so binaries, tests and
// the load-generator harness can all build the full server wiring —
// durability included — without a process.
type Config struct {
	// N and Seed are the default scenario size and seed of new sessions;
	// MaxN bounds the size a client (or imported snapshot) may request.
	N, MaxN int
	Seed    int64
	// MaxSessions caps live sessions (0 = unlimited).
	MaxSessions int
	// SessionShards sets the session store's stripe count (0 = default);
	// more shards spread lock contention under many concurrent sessions.
	SessionShards int
	// RunWorkers, RunQueue and RunSessionQueue size the async run engine.
	RunWorkers      int
	RunQueue        int
	RunSessionQueue int
	// SSEKeepAlive and SSEWriteTimeout harden the event stream.
	SSEKeepAlive    time.Duration
	SSEWriteTimeout time.Duration
	// DataDir enables durability ("" = ephemeral).
	DataDir string

	// Journal switches durability to the incremental append-only journal;
	// JournalMaxRecords/JournalMaxBytes are its compaction thresholds.
	Journal           bool
	JournalMaxRecords int
	JournalMaxBytes   int64
	// JournalGroupWindow enables group commit: journal appends landing
	// within the window share one fsync instead of paying one each (0 =
	// every append fsyncs directly). JournalGroupMax caps how many appends
	// one batch may absorb (0 = default).
	JournalGroupWindow time.Duration
	JournalGroupMax    int
	// JournalRowDiffs captures relation replacements as row-level diffs —
	// added/removed tuples — instead of wholesale relation clones, shrinking
	// stage records for feedback-style workloads that touch few rows.
	JournalRowDiffs bool
	// SnapshotPerStage, with the journal off, persists the session's full
	// snapshot envelope after every completed stage — the journal's
	// per-stage durability point at wholesale cost. It is the baseline
	// configuration the load benchmark's regression gate measures the
	// journal + group-commit + row-diff stack against; ignored when
	// Journal is on.
	SnapshotPerStage bool
	// RestoreClosed restores explicitly DELETEd archived sessions at boot.
	RestoreClosed bool

	// Trace enables the span recorder: every mutating request (and any
	// request carrying an inbound W3C traceparent) produces a span tree —
	// HTTP root → run → queue-wait / per-stage → journal append —
	// retrievable via GET /api/v1/traces. TraceCapacity bounds retained
	// traces and TraceMaxSpans the spans kept per trace (0 = defaults);
	// TraceSlowThreshold logs any span at or over it as a structured
	// warning (0 = off).
	Trace              bool
	TraceCapacity      int
	TraceMaxSpans      int
	TraceSlowThreshold time.Duration
	// Pprof registers net/http/pprof under /debug/pprof/.
	Pprof bool
	// Logger is the structured logger for request lines and operational
	// events (nil = slog.Default()).
	Logger *slog.Logger
	// RuntimeSampleEvery is the interval of the runtime gauge sampler
	// feeding goroutine/heap/GC gauges into metricz (0 = its default).
	RuntimeSampleEvery time.Duration
}

// New wires registry, run engine, session manager and — when a data
// directory is configured — the durability paths: restore every snapshot in
// the directory, then persist sessions on run completion, close, evict and
// Close.
func New(cfg Config) (*Server, error) {
	s := &Server{
		registry:          vada.DefaultStageRegistry(),
		metrics:           vada.NewMetricsRegistry(),
		defaultN:          cfg.N,
		defaultSeed:       cfg.Seed,
		maxN:              cfg.MaxN,
		started:           time.Now(),
		sseKeepAlive:      cfg.SSEKeepAlive,
		sseWriteTimeout:   cfg.SSEWriteTimeout,
		dataDir:           cfg.DataDir,
		journal:           cfg.Journal,
		journalMaxRecords: cfg.JournalMaxRecords,
		journalMaxBytes:   cfg.JournalMaxBytes,
		journalRowDiffs:   cfg.JournalRowDiffs,
		snapshotPerStage:  cfg.SnapshotPerStage,
		restoreClosed:     cfg.RestoreClosed,
		pprof:             cfg.Pprof,
		logger:            cfg.Logger,
		recorders:         map[string]*vada.JournalRecorder{},
		deleting:          map[string]int{},
		gone:              map[string]bool{},
	}
	if s.logger == nil {
		s.logger = slog.Default()
	}
	if cfg.Trace {
		s.tracer = vada.NewTracer(
			vada.NewTraceStore(cfg.TraceCapacity, cfg.TraceMaxSpans),
			vada.WithTraceSlowSpans(cfg.TraceSlowThreshold),
			vada.WithTraceLogger(s.logger),
		)
	}
	s.stopSampler = vada.StartRuntimeSampler(s.metrics, cfg.RuntimeSampleEvery)
	s.runs = vada.NewRunEngine(
		vada.WithRunWorkers(cfg.RunWorkers),
		vada.WithRunQueueDepth(cfg.RunQueue),
		vada.WithRunSessionQueue(cfg.RunSessionQueue),
		vada.WithRunNotify(s.publishTransition),
		vada.WithRunMetrics(s.metrics),
	)
	s.mgr = vada.NewSessionManager(
		vada.WithMaxSessions(cfg.MaxSessions),
		vada.WithSessionShards(cfg.SessionShards),
		vada.WithManagerMetrics(s.metrics),
		// Stop hook: interrupt outstanding work the moment the session is
		// marked closed, so the manager's quiesce wait is short.
		vada.WithStopHook(func(sess *vada.Session) {
			if n := s.runs.CancelSession(sess.ID()); n > 0 {
				s.logger.Info("session closing", "session", sess.ID(), "runs_cancelled", n)
			}
		}),
		// Evict hook: runs post-quiescence, so the durable state written
		// here carries the final KB version, event history and run records.
		// Explicit DELETEs garbage-collect instead of persisting; evicted
		// journaled sessions compact (snapshot + truncated journal) so a
		// restart replays nothing.
		vada.WithEvictHook(func(sess *vada.Session) {
			id := sess.ID()
			if s.dataDir != "" {
				s.runs.WaitSession(id)
				switch {
				case s.isDeleting(id):
					s.gcSession(sess)
				default:
					if rec := s.recorder(id); rec != nil {
						if err := rec.Compact(func() error { return s.persistSession(sess) }); err != nil {
							s.logger.Error("compacting session on evict", "session", id, "error", err)
						}
						s.dropRecorder(id)
					} else if err := s.persistSession(sess); err != nil {
						s.logger.Error("persisting session", "session", id, "error", err)
					}
				}
			}
			s.logger.Info("session closed", "session", id)
		}),
	)
	// The committer must exist before restoreAll: recovered sessions adopt
	// their journals during restore and wire into the same batch stream.
	if s.journalOn() && cfg.JournalGroupWindow > 0 {
		s.committer = vada.NewGroupCommitter(cfg.JournalGroupWindow, cfg.JournalGroupMax, s.metrics)
	}
	if s.dataDir != "" {
		if err := os.MkdirAll(s.dataDir, 0o755); err != nil {
			return nil, fmt.Errorf("creating -data-dir: %w", err)
		}
		s.restoreAll()
		if s.restoreClosed {
			s.restoreClosedAll()
		}
		s.persistCh = make(chan string, 256)
		s.persistDone = make(chan struct{})
		s.persistWG.Add(1)
		go s.persister()
	}
	return s, nil
}

// journalOn reports whether incremental durability is active.
func (s *Server) journalOn() bool { return s.dataDir != "" && s.journal }

// sessionOpts are the options every session — created, imported or
// restored — gets: the shared stage registry and, with journaling on, the
// stage hook that appends each completed stage's mutation record.
func (s *Server) sessionOpts() []vada.SessionOption {
	opts := []vada.SessionOption{
		vada.WithStageRegistry(s.registry),
		vada.WithSessionMetrics(s.metrics),
	}
	if s.journalOn() {
		opts = append(opts, vada.WithStageCommitHook(s.journalStage))
	} else if s.snapshotPerStage && s.dataDir != "" {
		opts = append(opts, vada.WithStageCommitHook(s.snapshotStage))
	}
	return opts
}

// snapshotStage is the snapshot-per-stage commit hook (journal off): the
// returned wait — invoked by Step after the run mutex is released — writes
// the session's full snapshot envelope, giving every acknowledged stage the
// journal's durability point at wholesale cost. It exists as the honest
// equal-durability baseline the load benchmark's regression gate measures
// the journal stack against.
func (s *Server) snapshotStage(ctx context.Context, sess *vada.Session, ev vada.SessionEvent) func() {
	return func() {
		if err := s.persistSession(sess); err != nil {
			s.logger.Error("persisting stage snapshot", "stage", ev.Stage, "session", sess.ID(), "error", err)
		}
	}
}

// journalStage is the session stage-commit hook: one fsynced O(delta)
// append per completed stage. It runs under the session's run mutex, so
// the delta cut inside RecordStageCommit cannot race the next stage's
// writes; the returned wait — invoked by Step after the run mutex is
// released — blocks until the record is durable, letting the group
// committer batch the fsync with other pending appends. ctx carries the
// stage's trace span, making the append a `journal.append` child of it. An
// append failure is logged, not fatal — the compaction and evict snapshots
// backstop it.
func (s *Server) journalStage(ctx context.Context, sess *vada.Session, ev vada.SessionEvent) func() {
	rec := s.recorder(sess.ID())
	if rec == nil {
		return nil
	}
	wait, err := rec.RecordStageCommit(ctx, ev)
	if err != nil {
		s.logger.Error("journaling stage", "stage", ev.Stage, "session", sess.ID(), "error", err)
	}
	// Synchronous stages never complete a run, so they would never reach
	// the persister's threshold check — hint it here (non-blocking, off the
	// wrangling path) so sync-only workloads compact too.
	if s.persistCh != nil && rec.ShouldCompact(s.journalMaxRecords, s.journalMaxBytes) {
		select {
		case s.persistCh <- sess.ID():
		default:
		}
	}
	if wait == nil {
		return nil
	}
	return func() {
		if err := wait(); err != nil {
			s.logger.Error("journaling stage", "stage", ev.Stage, "session", sess.ID(), "error", err)
		}
	}
}

// recorder returns the session's journal recorder, or nil.
func (s *Server) recorder(id string) *vada.JournalRecorder {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.recorders[id]
}

// dropRecorder unregisters and closes the session's journal recorder.
func (s *Server) dropRecorder(id string) {
	s.recMu.Lock()
	rec := s.recorders[id]
	delete(s.recorders, id)
	s.recMu.Unlock()
	if rec != nil {
		if err := rec.Close(); err != nil {
			s.logger.Error("closing journal", "session", id, "error", err)
		}
	}
}

// startJournal makes a new (created or imported) session incrementally
// durable: open a fresh journal (resetting any stale file a re-imported ID
// left behind) and register the recorder with a deferred baseline. The
// snapshot the journal layers onto is captured here — to memory, a few
// tens of KB of creation-time envelope, bounded by the session cap — but
// written to disk by the recorder only when its first record is
// acknowledged. Sessions that never complete a stage or run (created then
// deleted, churn) therefore cost zero snapshot writes, creation stays off
// the fsync path, and journal records remain pure deltas on top of the
// creation state — nothing is double-written. The returned error reports
// the session will NOT become durable; callers that are about to destroy
// another durable copy (the archive-restore path) must write a snapshot
// themselves first.
func (s *Server) startJournal(sess *vada.Session) error {
	if !s.journalOn() || !safeSnapshotID(sess.ID()) {
		return nil
	}
	var baseline bytes.Buffer
	if err := vada.ExportSession(&baseline, sess, s.runs); err != nil {
		s.logger.Error("capturing baseline snapshot", "session", sess.ID(), "error", err)
		return err
	}
	w, recovered, err := vada.OpenJournal(filepath.Join(s.dataDir, sess.ID()+journalExt))
	if err != nil {
		s.logger.Error("opening journal", "session", sess.ID(), "error", err)
		return err
	}
	if len(recovered) > 0 {
		if err := w.Reset(); err != nil {
			s.logger.Error("resetting stale journal", "session", sess.ID(), "error", err)
			w.Close()
			return err
		}
	}
	id := sess.ID()
	data := baseline.Bytes()
	s.adoptJournal(sess, w, nil,
		vada.WithJournalBaseline(func() error { return s.persistSnapshotBytes(id, data) }))
	return nil
}

// adoptJournal registers a recorder over an open journal writer, closing
// any recorder a superseded session left under the same ID.
func (s *Server) adoptJournal(sess *vada.Session, w *vada.JournalWriter, knownRuns []vada.Run, opts ...vada.JournalRecorderOption) {
	w.SetMetrics(s.metrics)
	if s.committer != nil {
		w.SetGroupCommit(s.committer)
	}
	if s.journalRowDiffs {
		opts = append(opts, vada.WithJournalRowDiffs())
	}
	rec := vada.NewJournalRecorder(w, sess, knownRuns, opts...)
	s.recMu.Lock()
	if s.recorders == nil {
		s.recorders = map[string]*vada.JournalRecorder{}
	}
	old := s.recorders[sess.ID()]
	s.recorders[sess.ID()] = rec
	s.recMu.Unlock()
	if old != nil {
		old.Close()
	}
}

// isDeleting reports whether the session is being explicitly DELETEd (as
// opposed to idle-evicted), which switches the evict hook from persist to
// garbage-collect.
func (s *Server) isDeleting(id string) bool {
	s.delMu.Lock()
	defer s.delMu.Unlock()
	return s.deleting[id] > 0
}

// beginDelete/endDelete refcount in-flight DELETE handlers for one session:
// a duplicate DELETE (client retry) returns 404 immediately and must not
// clear the mark while the first handler is still inside the (possibly
// slow) teardown whose evict hook consults it.
func (s *Server) beginDelete(id string) {
	s.delMu.Lock()
	if s.deleting == nil {
		s.deleting = map[string]int{}
	}
	s.deleting[id]++
	s.delMu.Unlock()
}

func (s *Server) endDelete(id string) {
	s.delMu.Lock()
	if s.deleting[id]--; s.deleting[id] <= 0 {
		delete(s.deleting, id)
	}
	s.delMu.Unlock()
}

// markGone/clearGone/isGone tombstone garbage-collected session IDs so a
// persist racing the DELETE (the persister goroutine already holds the
// *Session) cannot re-create the files gcSession just removed. gcSession
// marks while holding persistMu; persistSession checks under persistMu; so
// every write ordered after the GC observes the tombstone.
func (s *Server) markGone(id string) {
	s.delMu.Lock()
	if s.gone == nil {
		s.gone = map[string]bool{}
	}
	s.gone[id] = true
	s.delMu.Unlock()
}

func (s *Server) clearGone(id string) {
	s.delMu.Lock()
	delete(s.gone, id)
	s.delMu.Unlock()
}

func (s *Server) isGone(id string) bool {
	s.delMu.Lock()
	defer s.delMu.Unlock()
	return s.gone[id]
}

// gcSession is the DELETE path of snapshot retention: the session's final
// state is archived under <data-dir>/closed/ and the live .vsnap/.vjournal
// pair is removed, so the session no longer resurrects on boot (unless the
// server opts back in with -restore-closed).
func (s *Server) gcSession(sess *vada.Session) {
	id := sess.ID()
	// Supersession guard: the teardown runs after Manager.Close removed the
	// ID from the map, so an import can have registered a NEW session under
	// the same ID by now — its recorder and fresh files must not be
	// clobbered by the old session's GC.
	if cur, err := s.mgr.Get(id); err == nil && cur != sess {
		s.logger.Warn("session re-registered during delete; skipping GC", "session", id)
		return
	}
	s.dropRecorder(id)
	if !safeSnapshotID(id) {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	closed := filepath.Join(s.dataDir, closedDirName)
	if err := os.MkdirAll(closed, 0o755); err != nil {
		s.logger.Error("creating archive dir", "dir", closed, "error", err)
		return
	}
	tmp, err := os.CreateTemp(closed, ".tmp-*")
	if err != nil {
		s.logger.Error("archiving session", "session", id, "error", err)
		return
	}
	defer os.Remove(tmp.Name())
	err = vada.ExportSession(tmp, sess, s.runs)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), filepath.Join(closed, id+snapshotExt))
	}
	if err != nil {
		s.logger.Error("archiving session", "session", id, "error", err)
		return
	}
	for _, stale := range []string{id + snapshotExt, id + journalExt} {
		if err := os.Remove(filepath.Join(s.dataDir, stale)); err != nil && !errors.Is(err, os.ErrNotExist) {
			s.logger.Error("removing stale durable file", "file", stale, "error", err)
		}
	}
	// Tombstone while still holding persistMu: any persist that acquires
	// the lock after this point sees it and declines to resurrect the pair.
	s.markGone(id)
	s.logger.Info("session archived", "session", id, "dir", closedDirName)
}

// Close drains the run engine, stops the persister and snapshots every live
// session — the graceful-shutdown path. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.runs.Close() // cancels live runs and waits for workers to drain
		if s.persistDone != nil {
			close(s.persistDone)
			s.persistWG.Wait()
		}
		s.persistAll()
		// After persistAll: the final compaction snapshots may still append
		// (run records) through the group committer; close it only once no
		// writer will submit again.
		if s.committer != nil {
			s.committer.Close()
		}
		if s.stopSampler != nil {
			s.stopSampler()
		}
	})
}

// Handler returns the server's full HTTP surface: the versioned routes
// behind the metrics middleware, so every request — UI, API, SSE — is
// counted and timed per route.
func (s *Server) Handler() http.Handler { return s.instrument(s.routes()) }

// EvictIdle closes every session idle longer than maxIdle, returning the
// evicted IDs — the binary runs this from a ticker.
func (s *Server) EvictIdle(maxIdle time.Duration) []string {
	return s.mgr.EvictIdle(maxIdle)
}

// persister serialises durability writes triggered by completed runs onto
// one goroutine, off the engine's notify path. Hints are coalesced: a burst
// of back-to-back run completions on one session collapses into a single
// persist pass instead of redundant full snapshots. Sessions already
// removed from the manager were (or will be) persisted by the evict hook
// instead.
func (s *Server) persister() {
	defer s.persistWG.Done()
	for {
		select {
		case <-s.persistDone:
			return
		case id := <-s.persistCh:
			for _, sid := range drainHints(s.persistCh, id) {
				s.persistHinted(sid)
			}
		}
	}
}

// drainHints collapses every queued persist hint into unique session IDs in
// first-seen order, starting from the hint already in hand.
func drainHints(ch <-chan string, first string) []string {
	ids := []string{first}
	seen := map[string]bool{first: true}
	for {
		select {
		case id := <-ch:
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		default:
			return ids
		}
	}
}

// persistHinted makes one session's recent run completions durable: with a
// journal, append run records for the not-yet-journaled terminal runs and
// compact if the journal crossed its thresholds; without one, write the
// full snapshot (the -journal=false path).
func (s *Server) persistHinted(id string) {
	sess, err := s.mgr.Get(id)
	if err != nil {
		return
	}
	rec := s.recorder(id)
	if rec == nil {
		if err := s.persistSession(sess); err != nil {
			s.logger.Error("persisting session", "session", id, "error", err)
		}
		return
	}
	if err := rec.RecordRuns(context.Background(), s.runs.ListTerminal(id)); err != nil {
		s.logger.Error("journaling runs", "session", id, "error", err)
	}
	if rec.ShouldCompact(s.journalMaxRecords, s.journalMaxBytes) {
		records, bytes := rec.Stats()
		if err := rec.Compact(func() error { return s.persistSession(sess) }); err != nil {
			s.logger.Error("compacting session", "session", id, "error", err)
			return
		}
		s.logger.Info("session compacted", "session", id,
			"journal_records", records, "journal_bytes", bytes)
	}
}

// persistSession atomically writes one session's snapshot envelope to
// <data-dir>/<id>.vsnap (write to a temp file, fsync, rename). Writers are
// serialised, so a later capture always lands later on disk.
func (s *Server) persistSession(sess *vada.Session) error {
	if s.dataDir == "" {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	id := sess.ID()
	if s.isGone(id) {
		// The session's durable state was garbage-collected while this
		// persist was in flight; writing now would resurrect it on the
		// next boot.
		return nil
	}
	if !safeSnapshotID(id) {
		return fmt.Errorf("session ID %q is not filesystem-safe", id)
	}
	return s.writeSnapshotLocked(id, func(tmp *os.File) error {
		return vada.ExportSession(tmp, sess, s.runs)
	})
}

// persistSnapshotBytes atomically writes an already-captured snapshot
// envelope to <data-dir>/<id>.vsnap — the deferred-baseline path, where
// the envelope was exported to memory at session creation and hits disk
// only when the journal's first record needs a snapshot under it.
func (s *Server) persistSnapshotBytes(id string, data []byte) error {
	if s.dataDir == "" {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.isGone(id) {
		return nil
	}
	if !safeSnapshotID(id) {
		return fmt.Errorf("session ID %q is not filesystem-safe", id)
	}
	return s.writeSnapshotLocked(id, func(tmp *os.File) error {
		_, err := tmp.Write(data)
		return err
	})
}

// writeSnapshotLocked is the shared temp+fsync+rename tail of the snapshot
// writers. Callers hold persistMu and have vetted the ID.
func (s *Server) writeSnapshotLocked(id string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(s.dataDir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := fill(tmp); err != nil {
		tmp.Close()
		return err
	}
	t0 := time.Now()
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	s.metrics.Counter(vada.MetricName("persist_fsync_total", "path", "snapshot")).Inc()
	s.metrics.Histogram(vada.MetricName("persist_fsync_seconds", "path", "snapshot"), nil).ObserveSince(t0)
	if info, err := tmp.Stat(); err == nil {
		s.metrics.Counter("persist_snapshot_bytes_total").Add(info.Size())
	}
	s.metrics.Counter("persist_snapshots_total").Inc()
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dataDir, id+snapshotExt)); err != nil {
		return err
	}
	s.lastSnapshotAt = time.Now()
	return nil
}

// persistAll makes every live session durable at rest; the graceful
// shutdown path. Journaled sessions compact — a restart after a clean
// shutdown replays nothing.
func (s *Server) persistAll() {
	if s.dataDir == "" {
		return
	}
	for _, sess := range s.mgr.List() {
		id := sess.ID()
		if rec := s.recorder(id); rec != nil {
			if err := rec.Compact(func() error { return s.persistSession(sess) }); err != nil {
				s.logger.Error("compacting session at shutdown", "session", id, "error", err)
			}
			s.dropRecorder(id)
			continue
		}
		if err := s.persistSession(sess); err != nil {
			s.logger.Error("persisting session", "session", id, "error", err)
		}
	}
}

// restoreAll loads every persisted session in the data directory into the
// manager and run engine: each snapshot is decoded, its journal's valid
// prefix (if one exists) is replayed over it — torn tails truncated, never
// fatal — and the composed state is restored. A file that fails to decode
// or register is logged and skipped; one corrupt file must not take the
// service down.
func (s *Server) restoreAll() {
	entries, err := os.ReadDir(s.dataDir)
	if err != nil {
		s.logger.Error("reading -data-dir", "error", err)
		return
	}
	restored := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapshotExt) {
			continue
		}
		if s.restoreOne(s.dataDir, e.Name(), true) {
			restored++
		}
	}
	if restored > 0 {
		s.logger.Info("restored sessions", "count", restored, "dir", s.dataDir)
	}
}

// restoreOne restores a single <dir>/<name> snapshot (plus its journal, if
// any) and reports success. adoptJournal re-opens the session's journal for
// appending; callers that will start a fresh journal themselves (the
// archive-restore path) pass false.
func (s *Server) restoreOne(dir, name string, adoptJournal bool) bool {
	path := filepath.Join(dir, name)
	f, err := os.Open(path)
	if err != nil {
		s.logger.Error("opening snapshot", "file", name, "error", err)
		return false
	}
	snap, err := vada.ReadSessionSnapshot(f)
	f.Close()
	if err != nil {
		s.logger.Warn("skipping snapshot", "file", name, "error", err)
		return false
	}
	// Journal recovery: compose the valid prefix over the snapshot. An
	// unreadable journal (not one of ours, unknown version) is skipped and
	// the snapshot restores on its own.
	jname := strings.TrimSuffix(name, snapshotExt) + journalExt
	jpath := filepath.Join(dir, jname)
	replayed := 0
	if data, err := os.ReadFile(jpath); err == nil {
		res, jerr := vada.ReplayJournal(bytes.NewReader(data))
		if jerr != nil {
			s.logger.Warn("skipping journal", "file", jname, "error", jerr)
		} else {
			snap = vada.ComposeJournal(snap, res.Records)
			replayed = len(res.Records)
			if res.Damaged {
				s.logger.Warn("journal had a damaged tail", "file", jname, "recovered_records", replayed)
			}
		}
	}
	sess, err := vada.RestoreSessionInto(s.mgr, s.runs, snap, s.sessionOpts()...)
	if err != nil {
		s.logger.Error("restoring snapshot", "file", name, "error", err)
		return false
	}
	if adoptJournal && s.journalOn() && safeSnapshotID(sess.ID()) {
		// Re-open for appending (truncating any damaged tail on disk); the
		// recovered records are already composed into the live session.
		w, _, err := vada.OpenJournal(filepath.Join(s.dataDir, sess.ID()+journalExt))
		if err != nil {
			s.logger.Error("opening journal", "session", sess.ID(), "error", err)
		} else {
			s.adoptJournal(sess, w, snap.Runs)
		}
	}
	s.logger.Info("restored session", "session", sess.ID(),
		"events", len(snap.Events), "runs", len(snap.Runs), "journal_records", replayed)
	return true
}

// restoreClosedAll is the -restore-closed opt-in: archived sessions under
// <data-dir>/closed/ come back live. A successfully restored archive is
// persisted at the top level again and removed from the archive.
func (s *Server) restoreClosedAll() {
	closed := filepath.Join(s.dataDir, closedDirName)
	entries, err := os.ReadDir(closed)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.logger.Error("reading archive dir", "dir", closed, "error", err)
		}
		return
	}
	restored := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapshotExt) {
			continue
		}
		if !s.restoreOne(closed, e.Name(), false) {
			continue
		}
		// The archive is removed only once a live top-level copy exists —
		// a failed baseline write must not delete the only durable copy.
		id := strings.TrimSuffix(e.Name(), snapshotExt)
		if sess, err := s.mgr.Get(id); err == nil {
			// The journal's baseline is deferred, so write the live snapshot
			// here explicitly: the archive copy is destroyed below and must
			// never be the only durable state.
			if err := s.persistSession(sess); err != nil {
				s.logger.Error("persisting unarchived session", "session", id, "error", err)
				continue
			}
			if s.journalOn() {
				if err := s.startJournal(sess); err != nil {
					continue
				}
			}
		}
		if err := os.Remove(filepath.Join(closed, e.Name())); err != nil {
			s.logger.Error("removing archived snapshot", "file", e.Name(), "error", err)
		}
		restored++
	}
	if restored > 0 {
		s.logger.Info("restored archived sessions", "count", restored, "dir", closed)
	}
}

// safeSnapshotID accepts session IDs that map onto a single path element:
// letters, digits, dot, dash and underscore, not starting with a dot. This
// is the guard between imported snapshot metadata and the filesystem.
func safeSnapshotID(id string) bool {
	if id == "" || len(id) > 128 || id[0] == '.' {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// routes wires the versioned API. The UI is registered as "GET /{$}" (the
// root path only), so requests for a known path with the wrong verb fall
// through to ServeMux's 405 + Allow handling instead of the catch-all —
// every /api/v1 route answers a correct 405 for unmatched methods.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /api/v1/metricz", s.handleMetricz)
	mux.HandleFunc("GET /api/v1/traces", s.handleTraceList)
	mux.HandleFunc("GET /api/v1/traces/{tid}", s.handleTraceGet)
	mux.HandleFunc("GET /api/v1/stages", s.handleStages)
	mux.HandleFunc("POST /api/v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /api/v1/sessions", s.handleList)
	mux.HandleFunc("GET /api/v1/sessions/{id}", s.handleState)
	mux.HandleFunc("GET /api/v1/sessions/{id}/state", s.handleState)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", s.handleClose)
	mux.HandleFunc("POST /api/v1/sessions/{id}/stages/{name}", s.handleStage)
	mux.HandleFunc("POST /api/v1/sessions/{id}/plans", s.handlePlan)
	mux.HandleFunc("POST /api/v1/sessions/{id}/bootstrap", s.handleBootstrap)
	mux.HandleFunc("POST /api/v1/sessions/{id}/datacontext", s.handleDataContext)
	mux.HandleFunc("POST /api/v1/sessions/{id}/feedback", s.handleFeedback)
	mux.HandleFunc("POST /api/v1/sessions/{id}/usercontext", s.handleUserContext)
	mux.HandleFunc("GET /api/v1/sessions/{id}/suggestions", s.handleSuggestions)
	mux.HandleFunc("GET /api/v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/sessions/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /api/v1/sessions/{id}/runs", s.handleRunList)
	mux.HandleFunc("GET /api/v1/sessions/{id}/runs/{rid}", s.handleRunGet)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}/runs/{rid}", s.handleRunCancel)
	mux.HandleFunc("GET /api/v1/sessions/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/sessions/{id}/export", s.handleExport)
	mux.HandleFunc("GET /api/v1/sessions/{id}/export/{relation}", s.handleExportRelation)
	mux.HandleFunc("POST /api/v1/sessions/{id}/upload", s.handleUpload)
	mux.HandleFunc("POST /api/v1/sessions/import", s.handleImport)
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// publishTransition is the run engine's notify hook: every run state
// change is pushed to the owning session's subscribers so SSE clients see
// queued → running → stage k/n → terminal live. Sessions already gone
// (evicted mid-run) simply drop the signal. Terminal transitions also
// schedule a durability snapshot: the hook runs under the engine lock, so
// the write itself happens on the persister goroutine. A full channel
// drops the hint — the close/evict/shutdown snapshots are the backstop.
func (s *Server) publishTransition(run vada.Run) {
	if sess, err := s.mgr.Get(run.SessionID); err == nil {
		sess.PublishTransition(run.Transition())
	}
	if s.persistCh != nil && run.State.Terminal() {
		select {
		case s.persistCh <- run.SessionID:
		default:
		}
	}
}

// createRequest is the POST /api/v1/sessions body; zero values take the
// server defaults. Blank sessions skip scenario generation entirely: an
// empty wrangler with a target schema, fed real data through the connector
// stages instead of datagen.
type createRequest struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
	// Blank creates a scenario-free session: no synthetic sources, no
	// oracle — sources arrive via upload or the ingest/fetch stages.
	Blank bool `json:"blank,omitempty"`
	// Target overrides the blank session's target schema as attribute
	// specs ("name" or "name:int|float|bool|string"); empty keeps the
	// standard property target schema.
	Target []string `json:"target,omitempty"`
}

func (s *Server) handleCreate(rw http.ResponseWriter, r *http.Request) {
	req := createRequest{N: s.defaultN, Seed: s.defaultSeed}
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, "bad session config JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if req.N <= 0 {
		req.N = s.defaultN
	}
	if !req.Blank && s.maxN > 0 && req.N > s.maxN {
		http.Error(rw, fmt.Sprintf("scenario size %d exceeds the server limit %d", req.N, s.maxN),
			http.StatusBadRequest)
		return
	}
	// Cheap pre-check so a full server rejects before scenario generation;
	// Create remains the authoritative (race-free) gate.
	if s.mgr.AtCap() {
		writeError(rw, vada.ErrSessionLimit)
		return
	}
	var w *vada.Wrangler
	opts := []vada.SessionOption{vada.WithSessionName(req.Name)}
	if req.Blank {
		w = vada.New()
		target := vada.TargetSchema()
		if len(req.Target) > 0 {
			t, err := vada.ParseSchema(target.Name, req.Target...)
			if err != nil {
				http.Error(rw, "bad target schema: "+err.Error(), http.StatusBadRequest)
				return
			}
			target = t
		}
		w.SetTargetSchema(target)
	} else {
		cfg := vada.DefaultScenarioConfig()
		cfg.NProperties = req.N
		cfg.Seed = req.Seed
		sc := vada.GenerateScenario(cfg)
		w = vada.BuildScenarioWrangler(sc)
		opts = append(opts, vada.WithScenario(sc, req.Seed))
	}
	sess, err := s.mgr.Create(w, append(opts, s.sessionOpts()...)...)
	if err != nil {
		writeError(rw, err)
		return
	}
	s.clearGone(sess.ID())
	s.startJournal(sess)
	writeJSONStatus(rw, http.StatusCreated, sess.State())
}

func (s *Server) handleList(rw http.ResponseWriter, _ *http.Request) {
	sessions := s.mgr.List()
	states := make([]vada.SessionState, len(sessions))
	for i, sess := range sessions {
		states[i] = sess.State()
	}
	writeJSON(rw, map[string]any{"total": len(states), "sessions": states})
}

func (s *Server) handleState(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSON(rw, sess.State())
}

func (s *Server) handleClose(rw http.ResponseWriter, r *http.Request) {
	// Manager.Close fires the evict hook, which cancels the session's
	// in-flight and queued runs — the same path idle eviction takes. The
	// deleting marker switches the evict hook from persist to
	// garbage-collect: an explicit DELETE archives the session's durable
	// state instead of leaving it to resurrect on the next boot.
	id := r.PathValue("id")
	s.beginDelete(id)
	defer s.endDelete(id)
	if err := s.mgr.Close(id); err != nil {
		writeError(rw, err)
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}

// asyncRequested reports whether a stage POST opts into the 202 run flow.
func asyncRequested(r *http.Request) bool {
	switch r.URL.Query().Get("async") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// handleStages serves stage discovery: every stage registered on the
// server, in registration order.
func (s *Server) handleStages(rw http.ResponseWriter, _ *http.Request) {
	info := s.registry.Info()
	writeJSON(rw, map[string]any{"total": len(info), "stages": info})
}

// handleStage is the uniform stage route: any registered stage is invoked
// as POST .../stages/{name} with the stage's JSON payload as the body.
// Adding a stage to the registry extends the HTTP surface with no new
// handler.
func (s *Server) handleStage(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	payload, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, maxPayloadBytes))
	if err != nil {
		writeBodyError(rw, err)
		return
	}
	s.dispatchStage(rw, r, sess, vada.StageRequest{Stage: r.PathValue("name"), Payload: payload})
}

// dispatchStage resolves and applies one stage request, either
// synchronously (block until quiescence, answer the stage event) or, with
// ?async=1, as a run resource: enqueue on the engine and answer
// 202 Accepted with the run snapshot and its Location to poll. The stage
// and payload are resolved against the registry before anything runs, so
// unknown stages and undecodable payloads are a 400 on both paths.
func (s *Server) dispatchStage(rw http.ResponseWriter, r *http.Request, sess *vada.Session, req vada.StageRequest) {
	st, payload, err := s.registry.Resolve(req)
	if err != nil {
		writeError(rw, err)
		return
	}
	fn := func(ctx context.Context) (vada.SessionEvent, error) {
		return st.Apply(ctx, sess, payload)
	}
	if !asyncRequested(r) {
		ev, err := fn(r.Context())
		writeEvent(rw, ev, err)
		return
	}
	run, err := s.runs.SubmitContext(r.Context(), sess.ID(), st.Name, fn)
	if err != nil {
		writeError(rw, err)
		return
	}
	s.writeRunAccepted(rw, sess.ID(), run)
}

// writeRunAccepted answers 202 with the run snapshot and its poll URL.
func (s *Server) writeRunAccepted(rw http.ResponseWriter, sessionID string, run vada.Run) {
	rw.Header().Set("Location", fmt.Sprintf("/api/v1/sessions/%s/runs/%s", sessionID, run.ID))
	writeJSONStatus(rw, http.StatusAccepted, run)
}

// handlePlan submits a declarative multi-stage plan as one cancellable run.
// Plans are always asynchronous: the response is 202 with the run resource,
// whose per-stage progress streams over the session's SSE channel as
// transition events. Every stage is resolved and decoded before submission,
// so a malformed plan is rejected whole — no partial execution.
func (s *Server) handlePlan(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	var plan vada.Plan
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxPayloadBytes))
	// Strict, like the stage payload codecs: a misspelled "payload" key
	// must be a 400, not a silently-defaulted stage run.
	dec.DisallowUnknownFields()
	if err := dec.Decode(&plan); err != nil {
		writeBodyError(rw, err)
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		http.Error(rw, "trailing data after plan JSON", http.StatusBadRequest)
		return
	}
	run, err := s.runs.SubmitSessionPlanContext(r.Context(), sess, plan)
	if err != nil {
		writeError(rw, err)
		return
	}
	s.writeRunAccepted(rw, sess.ID(), run)
}

// The legacy per-stage routes are thin aliases: each translates its old
// wire format (query parameters, bare JSON bodies) into a StageRequest and
// funnels through the same registry dispatch as stages/{name}.

func (s *Server) stageAlias(rw http.ResponseWriter, r *http.Request, req vada.StageRequest) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	s.dispatchStage(rw, r, sess, req)
}

func (s *Server) handleBootstrap(rw http.ResponseWriter, r *http.Request) {
	s.stageAlias(rw, r, vada.StageRequest{Stage: vada.StageBootstrap})
}

func (s *Server) handleDataContext(rw http.ResponseWriter, r *http.Request) {
	// Empty payload: the session defaults to its scenario's reference data.
	s.stageAlias(rw, r, vada.StageRequest{Stage: vada.StageDataContext})
}

func (s *Server) handleFeedback(rw http.ResponseWriter, r *http.Request) {
	payload := map[string]any{"budget": intQuery(r, "budget", 100)}
	if mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); mt == "application/json" {
		body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, maxPayloadBytes))
		if err != nil {
			writeBodyError(rw, err)
			return
		}
		// The legacy route decoded item bodies leniently (unknown fields
		// ignored); keep those semantics on the alias by normalising here
		// and handing the strict stage codec only canonical fields.
		var items []vada.FeedbackItem
		if err := json.NewDecoder(bytes.NewReader(body)).Decode(&items); err != nil {
			http.Error(rw, "bad feedback JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		payload["items"] = items
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		http.Error(rw, "bad feedback JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.stageAlias(rw, r, vada.StageRequest{Stage: vada.StageFeedback, Payload: raw})
}

func (s *Server) handleUserContext(rw http.ResponseWriter, r *http.Request) {
	raw, _ := json.Marshal(map[string]string{"model": r.URL.Query().Get("model")})
	s.stageAlias(rw, r, vada.StageRequest{Stage: vada.StageUserContext, Payload: raw})
}

func (s *Server) handleRunList(rw http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	list := s.runs.List(id)
	if len(list) == 0 {
		// No retained runs: distinguish a live session without runs (empty
		// 200) from an unknown session ID (404). Closed sessions keep their
		// retained runs listable, matching GET .../runs/{rid}.
		if _, err := s.mgr.Get(id); err != nil {
			writeError(rw, err)
			return
		}
	}
	writeJSON(rw, map[string]any{"total": len(list), "runs": list})
}

// sessionRun resolves a run scoped to its session path, so run IDs cannot
// be probed across sessions.
func (s *Server) sessionRun(r *http.Request) (vada.Run, error) {
	run, err := s.runs.Get(r.PathValue("rid"))
	if err != nil {
		return vada.Run{}, err
	}
	if run.SessionID != r.PathValue("id") {
		return vada.Run{}, fmt.Errorf("%w: %q", vada.ErrRunNotFound, r.PathValue("rid"))
	}
	return run, nil
}

func (s *Server) handleRunGet(rw http.ResponseWriter, r *http.Request) {
	run, err := s.sessionRun(r)
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSON(rw, run)
}

func (s *Server) handleRunCancel(rw http.ResponseWriter, r *http.Request) {
	if _, err := s.sessionRun(r); err != nil {
		writeError(rw, err)
		return
	}
	run, err := s.runs.Cancel(r.PathValue("rid"))
	if err != nil {
		writeError(rw, err)
		return
	}
	// 202: cancellation of a running stage completes when the stage next
	// observes its context; poll the resource for the terminal state.
	writeJSONStatus(rw, http.StatusAccepted, run)
}

// sseWriter couples a response writer with its flusher and per-write
// deadline so every SSE write detects dead client connections instead of
// blocking a goroutine forever behind a proxy that never RSTs.
type sseWriter struct {
	rw      http.ResponseWriter
	flusher http.Flusher
	ctl     *http.ResponseController
	timeout time.Duration
	logger  *slog.Logger
}

// write sends one pre-rendered SSE frame and flushes it, under the
// per-write deadline. The deadline is cleared again right after the write,
// while still unexpired: idle gaps between events are unbounded by design,
// and extending an already-exceeded write deadline is documented as
// unsupported (on HTTP/2 an expired deadline resets the stream even while
// idle). A write or flush error means the client is gone.
func (w *sseWriter) write(frame string) error {
	if err := w.setDeadline(time.Now().Add(w.timeout)); err != nil {
		return err
	}
	if _, err := io.WriteString(w.rw, frame); err != nil {
		return err
	}
	w.flusher.Flush()
	return w.setDeadline(time.Time{})
}

// setDeadline arms or clears the write deadline, tolerating transports
// without deadline support.
func (w *sseWriter) setDeadline(t time.Time) error {
	if w.timeout <= 0 {
		return nil
	}
	if err := w.ctl.SetWriteDeadline(t); err != nil && !errors.Is(err, http.ErrNotSupported) {
		return err
	}
	return nil
}

// event renders and sends one session event. Stage events carry their
// sequence number as the SSE id (so reconnecting clients resume via
// Last-Event-ID); transition events are id-less progress signals.
func (w *sseWriter) event(ev vada.SessionEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		w.logger.Warn("encoding SSE event", "error", err)
		return nil
	}
	if ev.Type == vada.EventTransition {
		return w.write(fmt.Sprintf("event: transition\ndata: %s\n\n", data))
	}
	return w.write(fmt.Sprintf("id: %d\nevent: stage\ndata: %s\n\n", ev.Seq, data))
}

// handleEvents streams the session's stage events and run state
// transitions as server-sent events: stage history is replayed on connect
// (resumable via Last-Event-ID or ?after=seq), then live events flow until
// the client disconnects or the session closes. Idle periods carry
// keep-alive comments so intermediaries hold the connection open and dead
// peers are detected by the per-write deadline.
func (s *Server) handleEvents(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	flusher, ok := rw.(http.Flusher)
	if !ok {
		http.Error(rw, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w := &sseWriter{rw: rw, flusher: flusher, ctl: http.NewResponseController(rw),
		timeout: s.sseWriteTimeout, logger: s.logger}
	after := intQuery(r, "after", 0)
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			after = n
		}
	}
	history, events, cancel := sess.Subscribe(64)
	defer cancel()
	rw.Header().Set("Content-Type", "text/event-stream")
	rw.Header().Set("Cache-Control", "no-cache")
	rw.Header().Set("Connection", "keep-alive")
	rw.WriteHeader(http.StatusOK)
	for _, ev := range history {
		if ev.Seq > after {
			if err := w.event(ev); err != nil {
				return
			}
		}
	}
	if err := w.write(": connected\n\n"); err != nil {
		return
	}
	// 0 disables keep-alives (a nil channel never fires).
	var tick <-chan time.Time
	if s.sseKeepAlive > 0 {
		ticker := time.NewTicker(s.sseKeepAlive)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-tick:
			if err := w.write(": keep-alive\n\n"); err != nil {
				return
			}
		case ev, ok := <-events:
			if !ok { // session closed
				w.write("event: close\ndata: {}\n\n")
				return
			}
			if err := w.event(ev); err != nil {
				return
			}
		}
	}
}

// handleExport streams the session as a snapshot envelope — the same bytes
// -data-dir persists, so an export re-imports on any server. The capture is
// point-in-time: a stage still running is simply not in it yet.
func (s *Server) handleExport(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", sess.ID()+snapshotExt))
	if err := vada.ExportSession(rw, sess, s.runs); err != nil {
		// Headers are gone; all we can do is log and drop the connection.
		s.logger.Error("exporting session", "session", sess.ID(), "error", err)
	}
}

// handleImport restores a session from an uploaded snapshot envelope:
// 201 with the restored state on success, 400 for malformed envelopes,
// 409 when the session ID is already live, 429 at the session cap. With a
// data directory the imported session is persisted immediately, so it
// survives a crash that follows the import.
func (s *Server) handleImport(rw http.ResponseWriter, r *http.Request) {
	snap, err := vada.ReadSessionSnapshot(http.MaxBytesReader(rw, r.Body, maxSnapshotBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(rw, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		writeError(rw, err)
		return
	}
	if !safeSnapshotID(snap.Meta.ID) {
		http.Error(rw, fmt.Sprintf("snapshot session ID %q is not importable", snap.Meta.ID),
			http.StatusBadRequest)
		return
	}
	// Imported snapshots must respect the same scenario-size policy as
	// session creation: restoring regenerates the scenario, and an
	// unbounded NProperties/NPostcodes would let one upload allocate
	// arbitrarily (negative sizes are rejected by RestoreSession itself).
	if cfg := snap.Meta.Scenario; cfg != nil && s.maxN > 0 &&
		(cfg.NProperties > s.maxN || cfg.NPostcodes > s.maxN) {
		http.Error(rw, fmt.Sprintf("snapshot scenario size (%d properties, %d postcodes) exceeds the server limit %d",
			cfg.NProperties, cfg.NPostcodes, s.maxN), http.StatusBadRequest)
		return
	}
	sess, err := vada.RestoreSessionInto(s.mgr, s.runs, snap, s.sessionOpts()...)
	if err != nil {
		writeError(rw, err)
		return
	}
	s.clearGone(sess.ID())
	if s.journalOn() {
		// The baseline snapshot is deferred to the first journaled record,
		// so an import that never wrangles costs no snapshot write; the
		// uploaded envelope remains the client's durable copy until then.
		s.startJournal(sess)
	} else if s.dataDir != "" {
		if err := s.persistSession(sess); err != nil {
			s.logger.Error("persisting imported session", "session", sess.ID(), "error", err)
		}
	}
	s.logger.Info("imported session", "session", sess.ID(),
		"events", len(snap.Events), "runs", len(snap.Runs))
	rw.Header().Set("Location", "/api/v1/sessions/"+sess.ID())
	writeJSONStatus(rw, http.StatusCreated, sess.State())
}

// handleUpload feeds multipart files into the ingest stage: each file
// becomes one source (or, with ?role=context, data-context) relation named
// after its filename stem, decoded by extension (?format overrides). An
// optional "mapping" form field carries a JSON header→attribute mapping
// applied to every file; absent, headers are inferred against the session's
// target schema and data context. Files are ingested in upload order and a
// failure aborts the remainder — already-ingested files stay, mirroring the
// stage-by-stage semantics of a plan.
func (s *Server) handleUpload(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	r.Body = http.MaxBytesReader(rw, r.Body, maxPayloadBytes)
	if err := r.ParseMultipartForm(maxPayloadBytes); err != nil {
		writeBodyError(rw, err)
		return
	}
	defer r.MultipartForm.RemoveAll()
	var mapping map[string]string
	if ms := r.FormValue("mapping"); ms != "" {
		if err := json.Unmarshal([]byte(ms), &mapping); err != nil {
			http.Error(rw, "decoding mapping: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	// Collect file parts across all field names in a deterministic order:
	// sorted field name, then upload order within the field.
	fields := make([]string, 0, len(r.MultipartForm.File))
	total := 0
	for name, parts := range r.MultipartForm.File {
		fields = append(fields, name)
		total += len(parts)
	}
	sort.Strings(fields)
	if total == 0 {
		http.Error(rw, "multipart body carries no files", http.StatusBadRequest)
		return
	}
	explicit := r.URL.Query().Get("relation")
	if explicit != "" && total > 1 {
		http.Error(rw, "?relation names a single file; got "+strconv.Itoa(total), http.StatusBadRequest)
		return
	}
	type ingested struct {
		File     string            `json:"file"`
		Relation string            `json:"relation"`
		Event    vada.SessionEvent `json:"event"`
	}
	results := make([]ingested, 0, total)
	for _, field := range fields {
		for _, fh := range r.MultipartForm.File[field] {
			f, err := fh.Open()
			if err != nil {
				http.Error(rw, "opening upload "+fh.Filename+": "+err.Error(), http.StatusBadRequest)
				return
			}
			data, err := io.ReadAll(f)
			f.Close()
			if err != nil {
				writeBodyError(rw, err)
				return
			}
			name := explicit
			if name == "" {
				name = uploadRelationName(fh.Filename)
			}
			payload, err := json.Marshal(vada.IngestPayload{
				Relation: name,
				Format:   uploadFormat(fh.Filename, r.URL.Query().Get("format")),
				Role:     r.URL.Query().Get("role"),
				Data:     string(data),
				Mapping:  mapping,
			})
			if err != nil {
				writeError(rw, err)
				return
			}
			st, decoded, err := s.registry.Resolve(vada.StageRequest{Stage: vada.StageIngest, Payload: payload})
			if err != nil {
				writeError(rw, err)
				return
			}
			ev, err := st.Apply(r.Context(), sess, decoded)
			if err != nil {
				writeError(rw, err)
				return
			}
			results = append(results, ingested{File: fh.Filename, Relation: name, Event: ev})
		}
	}
	writeJSON(rw, map[string]any{"files": len(results), "ingested": results})
}

// handleExportRelation streams one relation through the CSV/JSONL sink:
// the clean wrangling result for "result", any knowledge-base relation by
// (optionally src_/dc_-prefixed) name otherwise. Rows are rendered in
// canonical order, so identical state exports identical bytes.
func (s *Server) handleExportRelation(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	format, err := vada.NormalizeFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeError(rw, err)
		return
	}
	name := r.PathValue("relation")
	rel, err := sess.Relation(name)
	if err != nil {
		writeError(rw, err)
		return
	}
	ctype, ext := "text/csv; charset=utf-8", ".csv"
	if format == vada.FormatJSONL {
		ctype, ext = "application/x-ndjson", ".jsonl"
	}
	rw.Header().Set("Content-Type", ctype)
	rw.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name+ext))
	t0 := time.Now()
	span := vada.TraceChildFromContext(r.Context(), "export.write",
		"relation", name, "format", format, "session", sess.ID())
	stats, err := vada.ConnectWrite(rw, rel, format)
	if span != nil {
		span.EndErr(err)
	}
	if err != nil {
		// Headers are gone; log and drop the connection like handleExport.
		s.logger.Error("exporting relation", "session", sess.ID(), "relation", name, "error", err)
		return
	}
	s.metrics.Counter(vada.MetricName("connect_rows_total", "dir", "out", "format", stats.Format)).Add(int64(stats.Rows))
	s.metrics.Counter(vada.MetricName("connect_bytes_total", "dir", "out", "format", stats.Format)).Add(stats.Bytes)
	s.metrics.Histogram(vada.MetricName("connect_seconds", "dir", "out", "format", stats.Format), nil).ObserveSince(t0)
}

// uploadRelationName derives a relation name from an uploaded filename:
// the base name without its extension, anything outside the relation-name
// alphabet replaced by '_', prefixed with "f" when the result does not
// start with a letter.
func uploadRelationName(filename string) string {
	base := filepath.Base(filename)
	stem := strings.TrimSuffix(base, filepath.Ext(base))
	var b strings.Builder
	for _, r := range stem {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	name := b.String()
	if name == "" || !(name[0] >= 'a' && name[0] <= 'z' || name[0] >= 'A' && name[0] <= 'Z') {
		name = "f" + name
	}
	if len(name) > 128 {
		name = name[:128]
	}
	return name
}

// uploadFormat picks a file's wire format: the explicit override when
// given, else the filename extension, else the CSV default.
func uploadFormat(filename, override string) string {
	if override != "" {
		return override
	}
	switch strings.ToLower(filepath.Ext(filename)) {
	case ".jsonl", ".ndjson":
		return vada.FormatJSONL
	default:
		return ""
	}
}

func (s *Server) handleHealthz(rw http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot()
	out := map[string]any{
		"status":    "ok",
		"uptime_s":  int(time.Since(s.started).Seconds()),
		"sessions":  s.mgr.Len(),
		"run_stats": s.runs.Stats(),
		// The metricz roll-up: enough to spot trouble from a health probe,
		// with /api/v1/metricz carrying the full per-series breakdown.
		"metrics": map[string]int64{
			"http_requests_total":      vada.SumMetricsCounters(snap, "http_requests_total"),
			"http_errors_total":        httpErrorTotal(snap),
			"runs_completed_total":     vada.SumMetricsCounters(snap, "runs_completed_total"),
			"runs_rejected_total":      vada.SumMetricsCounters(snap, "runs_queue_rejections_total"),
			"sse_dropped_events_total": vada.SumMetricsCounters(snap, "sse_dropped_events_total"),
			"persist_fsync_total":      vada.SumMetricsCounters(snap, "persist_fsync_total"),
			"connect_rows_total":       vada.SumMetricsCounters(snap, "connect_rows_total"),
			"connect_bytes_total":      vada.SumMetricsCounters(snap, "connect_bytes_total"),
			"advise_suggestions_total": vada.SumMetricsCounters(snap, "advise_suggestions_total"),
			"advise_accepted_total":    vada.SumMetricsCounters(snap, "advise_accepted_total"),
		},
		// The runtime sampler's latest gauges: enough to spot a goroutine
		// leak or heap growth from the same probe.
		"runtime": map[string]int64{
			"goroutines":       snap.Gauges[vada.MetricRuntimeGoroutines],
			"heap_inuse_bytes": snap.Gauges[vada.MetricRuntimeHeapInuse],
		},
	}
	if s.tracer != nil {
		out["traces"] = s.tracer.Store().Len()
	}
	if s.dataDir != "" {
		out["persist"] = s.persistStats()
	}
	writeJSON(rw, out)
}

// persistStats summarises the durability layer for healthz: whether
// journaling is on, how many sessions hold a journal, the total journal
// length and bytes accumulated since their last compactions, and when the
// last full snapshot was written.
func (s *Server) persistStats() map[string]any {
	// Copy the recorder set first: Stats takes each writer's mutex, which
	// an in-flight append holds across its fsync — reading them under
	// recMu would let one slow disk stall every session's stage hook.
	s.recMu.Lock()
	recs := make([]*vada.JournalRecorder, 0, len(s.recorders))
	for _, rec := range s.recorders {
		recs = append(recs, rec)
	}
	s.recMu.Unlock()
	sessions := len(recs)
	records := 0
	var bytes int64
	for _, rec := range recs {
		r, b := rec.Stats()
		records += r
		bytes += b
	}
	out := map[string]any{
		"journal":            s.journal,
		"journaled_sessions": sessions,
		"journal_records":    records,
		"journal_bytes":      bytes,
		"journal_row_diffs":  s.journalRowDiffs,
	}
	if s.snapshotPerStage && !s.journal {
		out["snapshot_per_stage"] = true
	}
	if s.committer != nil {
		snap := s.metrics.Snapshot()
		out["group_commit"] = map[string]any{
			"window":    s.committer.Window().String(),
			"max_batch": s.committer.MaxBatch(),
			"commits":   snap.Counters["persist_group_commits_total"],
			"fsyncs":    vada.SumMetricsCounters(snap, "persist_fsync_total"),
		}
	}
	s.persistMu.Lock()
	if !s.lastSnapshotAt.IsZero() {
		out["last_snapshot"] = s.lastSnapshotAt.UTC().Format(time.RFC3339Nano)
	}
	s.persistMu.Unlock()
	return out
}

// handleSuggestions serves the advisor's ranked next actions for a session.
// Each suggestion carries a rationale and — when actionable — a ready-to-POST
// stage request, so a thin client can close the loop by replaying the action
// against POST .../stages/{name} verbatim.
func (s *Server) handleSuggestions(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	sugs, err := sess.Suggestions(r.Context())
	if err != nil {
		writeError(rw, err)
		return
	}
	if sugs == nil {
		sugs = []vada.Suggestion{}
	}
	writeJSON(rw, map[string]any{"total": len(sugs), "suggestions": sugs})
}

func (s *Server) handleResult(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	res, err := sess.Result()
	if err != nil {
		writeError(rw, err)
		return
	}
	limit := intQuery(r, "limit", 100)
	offset := intQuery(r, "offset", 0)
	if limit <= 0 {
		limit = 100
	}
	if limit > maxResultPageSize {
		limit = maxResultPageSize
	}
	if offset < 0 {
		offset = 0
	}
	total := res.Cardinality()
	rows := make([]map[string]string, 0, min(limit, max(0, total-offset)))
	for i := offset; i < total && len(rows) < limit; i++ {
		row := map[string]string{}
		for j, a := range res.Schema.Attrs {
			row[a.Name] = res.Tuples[i][j].String()
		}
		rows = append(rows, row)
	}
	out := map[string]any{"total": total, "offset": offset, "limit": limit, "rows": rows}
	if next := offset + len(rows); next < total {
		out["next_offset"] = next
	}
	writeJSON(rw, out)
}

func (s *Server) handleTrace(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(rw, vada.TraceString(sess.Trace()))
}

func (s *Server) handleIndex(rw http.ResponseWriter, _ *http.Request) {
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(rw, indexHTML)
}

// writeEvent renders a stage outcome or maps its error onto a status code.
func writeEvent(rw http.ResponseWriter, ev vada.SessionEvent, err error) {
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSON(rw, ev)
}

// writeBodyError maps a request-body read failure onto a status code:
// bodies over the payload cap are 413, everything else 400.
func writeBodyError(rw http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		http.Error(rw, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(rw, "reading request body: "+err.Error(), http.StatusBadRequest)
}

// writeError maps the API's sentinel errors onto HTTP status codes.
// Load-shedding rejections (session cap, run queue full) carry a
// Retry-After hint so well-behaved clients back off instead of hammering.
func writeError(rw http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, vada.ErrSessionNotFound), errors.Is(err, vada.ErrNoResult),
		errors.Is(err, vada.ErrRunNotFound), errors.Is(err, vada.ErrUnknownRelation):
		status = http.StatusNotFound
	case errors.Is(err, vada.ErrUnknownUserContext), errors.Is(err, vada.ErrNoDataContext),
		errors.Is(err, vada.ErrUnknownStage), errors.Is(err, vada.ErrBadStagePayload),
		errors.Is(err, vada.ErrBadPlan), errors.Is(err, vada.ErrBadSnapshot),
		errors.Is(err, vada.ErrSnapshotMagic), errors.Is(err, vada.ErrSnapshotVersion),
		errors.Is(err, vada.ErrSnapshotTruncated), errors.Is(err, vada.ErrSnapshotChecksum),
		errors.Is(err, vada.ErrSnapshotTooLarge),
		errors.Is(err, vada.ErrBadFormat), errors.Is(err, vada.ErrSchemaMismatch):
		status = http.StatusBadRequest
	case errors.Is(err, vada.ErrSessionExists):
		status = http.StatusConflict
	case errors.Is(err, vada.ErrSessionLimit), errors.Is(err, vada.ErrRunQueueFull):
		status = http.StatusTooManyRequests
		rw.Header().Set("Retry-After", "1")
	case errors.Is(err, vada.ErrTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, vada.ErrFetchFailed):
		status = http.StatusBadGateway
	case errors.Is(err, vada.ErrSessionClosed):
		status = http.StatusGone
	case errors.Is(err, vada.ErrRunEngineClosed):
		status = http.StatusServiceUnavailable
	}
	http.Error(rw, err.Error(), status)
}

func intQuery(r *http.Request, key string, def int) int {
	if v := r.URL.Query().Get(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func writeJSON(rw http.ResponseWriter, v any) {
	writeJSONStatus(rw, http.StatusOK, v)
}

func writeJSONStatus(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Default().Warn("encoding response", "error", err)
	}
}

// indexHTML is the single-page mirror of Figure 3, now registry- and
// push-driven: it creates a session via /api/v1, invokes stages through the
// uniform stages/{name} route (or submits all four as one declarative
// plan), and drives every refresh off the session's SSE stream — stage
// events re-render the panels, transition events animate run progress.
const indexHTML = `<!DOCTYPE html>
<html><head><title>VADA — pay-as-you-go data wrangling</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 1.5em; max-width: 72em; }
 h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.2em; }
 button { margin-right: .5em; padding: .4em .8em; }
 table { border-collapse: collapse; font-size: .85em; margin-top: .5em; }
 td, th { border: 1px solid #ccc; padding: .2em .5em; text-align: left; }
 pre { background: #f6f6f6; padding: .8em; overflow-x: auto; font-size: .8em; }
 .row { display: flex; gap: 2em; flex-wrap: wrap; }
 .col { flex: 1; min-width: 24em; }
 #sid, #plan { color: #666; font-size: .85em; }
</style></head>
<body>
<h1>VADA — pay-as-you-go data wrangling (SIGMOD'17 demonstration)</h1>
<p>Work through the four steps of the demonstration one at a time, or submit
them as a single declarative plan: one cancellable run whose per-stage
progress streams back over the session's event channel. Every stage is a
registry entry behind the uniform stages/{name} route. Every browser tab
gets its own wrangling session.</p>
<p id="sid">(creating session…)</p>
<div>
 <button onclick="step('bootstrap')">1&nbsp;Bootstrap</button>
 <button onclick="step('data-context')">2&nbsp;Add data context</button>
 <button onclick="step('feedback', {budget: 100})">3&nbsp;Give feedback</button>
 <button onclick="step('user-context', {model: 'crime'})">4a&nbsp;Crime user context</button>
 <button onclick="step('user-context', {model: 'size'})">4b&nbsp;Size user context</button>
 <button onclick="runPlan()">▶&nbsp;Run all four as a plan</button>
 <button onclick="closeSession()">Close session</button>
</div>
<p id="plan"></p>
<div class="row">
 <div class="col"><h2>Stages</h2><pre id="stages">(none yet)</pre>
  <h2>Selected mappings</h2><pre id="selected"></pre></div>
 <div class="col"><h2>Runs</h2><pre id="runs">(none yet)</pre>
  <h2>Sessions on this server</h2><pre id="sessions"></pre></div>
</div>
<h2>Result (first rows)</h2>
<div id="result">(bootstrap first)</div>
<h2>Orchestration trace</h2>
<pre id="trace"></pre>
<script>
let sid = null, es = null;
const api = p => '/api/v1/sessions' + p;
async function ensureSession() {
  if (sid) return sid;
  const resp = await fetch(api(''), {method: 'POST', headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({name: 'ui'})});
  sid = (await resp.json()).id;
  document.getElementById('sid').textContent = 'session ' + sid;
  es = new EventSource(api('/' + sid + '/events'));
  es.addEventListener('stage', () => refresh());
  es.addEventListener('transition', e => onTransition(JSON.parse(e.data)));
  es.addEventListener('close', () => es.close());
  return sid;
}
function onTransition(ev) {
  const t = ev.run || {};
  let text = 'run ' + t.run_id + ': ' + t.state;
  if (t.stage_count > 1) text += ' — stage ' + (t.stage_index + 1) + '/' + t.stage_count + ' (' + t.stage + ')';
  else if (t.stage) text += ' (' + t.stage + ')';
  if (t.error) text += ' — ' + t.error;
  document.getElementById('plan').textContent = text;
  refreshRuns();
  // Failed and cancelled runs emit no stage event, so terminal transitions
  // also refresh the panels.
  if (t.state === 'failed' || t.state === 'cancelled') refresh();
}
// Transitions drive the page, but they are lossy by design (live-only,
// dropped for slow subscribers); while any run is still live, a slow poll
// backstop guarantees the panels eventually resolve even if the terminal
// transition was missed.
let runTimer = null;
async function refreshRuns() {
  if (!sid) return;
  const resp = await fetch(api('/' + sid + '/runs'));
  if (!resp.ok) return;
  const data = await resp.json();
  document.getElementById('runs').textContent = (data.runs||[]).map(r => {
     let line = r.id + '  ' + r.stage.padEnd(14) + r.state;
     if (r.plan) line += ' [' + ((r.events||[]).length) + '/' + r.plan.length + ' stages]';
     if (r.error) line += ' (' + r.error + ')';
     return line;
  }).join('\n') || '(none yet)';
  const live = (data.runs||[]).some(r => r.state === 'queued' || r.state === 'running');
  if (live && !runTimer) {
    runTimer = setTimeout(() => { runTimer = null; refresh(); }, 2000);
  }
}
async function refresh() {
  if (!sid) return;
  const st = await (await fetch(api('/' + sid))).json();
  document.getElementById('selected').textContent = (st.selected_mappings||[]).join('\n');
  document.getElementById('stages').textContent = (st.events||[]).map(e =>
     e.stage.padEnd(14) + (e.score ? ' F1=' + e.score.F1.toFixed(3) +
     ' val-acc=' + e.score.ValueAccuracy.toFixed(3) : '')).join('\n') || '(none yet)';
  document.getElementById('trace').textContent = await (await fetch(api('/' + sid + '/trace'))).text();
  const all = await (await fetch(api(''))).json();
  document.getElementById('sessions').textContent = (all.sessions||[]).map(s =>
     s.id + (s.name ? ' (' + s.name + ')' : '') + ' — ' + (s.events||[]).length + ' stages, ' +
     s.result_rows + ' rows').join('\n');
  await refreshRuns();
  const res = await fetch(api('/' + sid + '/result?limit=25'));
  if (res.ok) {
    const data = await res.json();
    if (data.rows.length) {
      const cols = Object.keys(data.rows[0]).sort();
      let html = '<table><tr>' + cols.map(c => '<th>'+c+'</th>').join('') + '</tr>';
      for (const r of data.rows)
        html += '<tr>' + cols.map(c => '<td>'+(r[c]||'∅')+'</td>').join('') + '</tr>';
      html += '</table><p>' + data.total + ' rows total</p>';
      document.getElementById('result').innerHTML = html;
    }
  }
}
function rejected(resp, text) {
  document.getElementById('runs').textContent = 'submit rejected: ' + resp.status + ' ' + text.trim();
}
async function step(name, payload) {
  await ensureSession();
  // Invoke through the uniform stage route as an async run; the SSE
  // transition and stage events drive every refresh from here.
  const resp = await fetch(api('/' + sid + '/stages/' + name + '?async=1'),
    {method: 'POST', headers: {'Content-Type': 'application/json'},
     body: payload ? JSON.stringify(payload) : null});
  if (!resp.ok) { rejected(resp, await resp.text()); return; }
  await refreshRuns();
}
async function runPlan() {
  await ensureSession();
  // The whole demonstration as one declarative plan: a single cancellable
  // run whose queued → running → stage k/n → terminal transitions arrive
  // over the event stream.
  const plan = {stages: [
    {stage: 'bootstrap'},
    {stage: 'data-context'},
    {stage: 'feedback', payload: {budget: 100}},
    {stage: 'user-context', payload: {model: 'crime'}},
  ]};
  const resp = await fetch(api('/' + sid + '/plans'),
    {method: 'POST', headers: {'Content-Type': 'application/json'}, body: JSON.stringify(plan)});
  if (!resp.ok) { rejected(resp, await resp.text()); return; }
  await refreshRuns();
}
async function closeSession() {
  if (!sid) return;
  if (es) { es.close(); es = null; }
  await fetch(api('/' + sid), {method: 'DELETE'});
  sid = null;
  document.getElementById('sid').textContent = '(session closed — reload to start another)';
}
ensureSession().then(refresh);
</script>
</body></html>
`
