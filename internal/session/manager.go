package session

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vada/internal/core"
	"vada/internal/metrics"
)

// defaultShards is the stripe count used when WithShards is not given.
// Sixteen stripes keep lock contention negligible for the session counts a
// single node serves while costing sixteen empty maps at rest.
const defaultShards = 16

// maxConcurrentTeardowns bounds the teardown fan-out in EvictIdle so a
// large eviction sweep cannot spawn an unbounded goroutine burst, while one
// session stuck in quiesce or a slow evict hook no longer serialises the
// rest of the sweep behind it.
const maxConcurrentTeardowns = 8

// shard is one stripe of the session table. Each shard has its own lock, so
// operations on sessions that hash to different stripes never contend.
type shard struct {
	mu       sync.RWMutex
	sessions map[string]*Session
}

// Manager serves many independent sessions: create, look up, list and close
// by ID, concurrency-safe, with a configurable session cap and an idle
// eviction hook. The session table is striped across N shards by session-ID
// hash — each shard has its own mutex — and the cap and live gauge are
// maintained on an atomic counter, so no operation takes a global lock.
// Wrangling work happens under the individual session's lock, so sessions
// proceed fully in parallel.
type Manager struct {
	maxSessions int
	stopHooks   []func(*Session)
	evictHooks  []func(*Session)
	reg         *metrics.Registry

	shards []shard
	seq    atomic.Uint64 // creation sequence, monotonic across shards
	live   atomic.Int64  // registered sessions; authoritative for the cap
}

// ManagerOption configures a Manager.
type ManagerOption func(*Manager)

// WithMaxSessions caps the number of live sessions (0 = unlimited).
// Create fails with ErrLimit at the cap.
func WithMaxSessions(n int) ManagerOption {
	return func(m *Manager) { m.maxSessions = n }
}

// WithShards sets the stripe count of the session table (default 16,
// minimum 1). More shards reduce lock contention between sessions whose IDs
// hash together; the count is fixed at construction.
func WithShards(n int) ManagerOption {
	return func(m *Manager) {
		if n < 1 {
			return // keep the default stripe count
		}
		m.shards = make([]shard, n)
	}
}

// WithStopHook installs a callback invoked (outside the manager lock) for
// every session removed by Close or EvictIdle, immediately after the
// session is marked closed and BEFORE the manager waits for its in-flight
// stage to finish. This is the place to interrupt outstanding work — a
// service cancels the session's async runs here — so the wait is short.
// Hooks compose in installation order.
func WithStopHook(hook func(*Session)) ManagerOption {
	return func(m *Manager) { m.stopHooks = append(m.stopHooks, hook) }
}

// WithEvictHook installs a callback invoked (outside the manager lock) for
// every session removed by Close or EvictIdle. Hooks compose: repeating the
// option adds another callback, run in installation order.
//
// Evict hooks run only after the session has quiesced — the stop hooks have
// fired and any in-flight stage has released the session — so a hook that
// persists the session always observes the final KB version and the
// complete event history, never a stage still unwinding.
func WithEvictHook(hook func(*Session)) ManagerOption {
	return func(m *Manager) { m.evictHooks = append(m.evictHooks, hook) }
}

// WithManagerMetrics instruments the session population: the live-session
// gauge (sessions_live) tracks Create/Restore/Close/EvictIdle, creations
// and cap rejections are counted (sessions_created_total,
// sessions_rejected_total), and removals are split by cause
// (sessions_closed_total, sessions_evicted_total). Cap rejections are
// counted for Create and Restore alike, so boot-time restore rejections
// show up in metricz.
func WithManagerMetrics(reg *metrics.Registry) ManagerOption {
	return func(m *Manager) { m.reg = reg }
}

// NewManager builds an empty session manager.
func NewManager(opts ...ManagerOption) *Manager {
	m := &Manager{}
	for _, opt := range opts {
		opt(m)
	}
	if m.shards == nil {
		m.shards = make([]shard, defaultShards)
	}
	for i := range m.shards {
		m.shards[i].sessions = map[string]*Session{}
	}
	return m
}

// Shards returns the stripe count of the session table.
func (m *Manager) Shards() int { return len(m.shards) }

// shardFor picks the stripe for a session ID (FNV-1a).
func (m *Manager) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &m.shards[h.Sum32()%uint32(len(m.shards))]
}

// reserve claims one slot against the session cap, race-free via CAS on the
// live counter. A rejection is counted; a successful reservation must be
// followed by either a shard insert or a release.
func (m *Manager) reserve() error {
	for {
		cur := m.live.Load()
		if m.maxSessions > 0 && cur >= int64(m.maxSessions) {
			m.count("sessions_rejected_total")
			return fmt.Errorf("%w (max %d)", ErrLimit, m.maxSessions)
		}
		if m.live.CompareAndSwap(cur, cur+1) {
			m.liveGauge()
			return nil
		}
	}
}

// release undoes a reservation (failed Restore) or records a removal.
func (m *Manager) release(n int64) {
	m.live.Add(-n)
	m.liveGauge()
}

// Create builds a session over the given Wrangler, assigns it a unique ID
// and registers it. It fails with ErrLimit when the cap is reached.
func (m *Manager) Create(w *core.Wrangler, opts ...Option) (*Session, error) {
	if err := m.reserve(); err != nil {
		return nil, err
	}
	seq := m.seq.Add(1)
	s := New(fmt.Sprintf("s%04d-%s", seq, randomSuffix()), w, opts...)
	s.mgrSeq = seq
	sh := m.shardFor(s.ID())
	sh.mu.Lock()
	sh.sessions[s.ID()] = s
	sh.mu.Unlock()
	m.count("sessions_created_total")
	return s, nil
}

// count increments a manager counter; no-op without a metrics registry.
func (m *Manager) count(name string) {
	if m.reg != nil {
		m.reg.Counter(name).Inc()
	}
}

// liveGauge refreshes the live-session gauge from the atomic counter.
func (m *Manager) liveGauge() {
	if m.reg != nil {
		m.reg.Gauge("sessions_live").Set(m.live.Load())
	}
}

// AtCap reports whether the session cap is currently reached — a cheap
// pre-check for callers doing expensive setup before Create (which remains
// the authoritative, race-free gate).
func (m *Manager) AtCap() bool {
	return m.maxSessions > 0 && m.live.Load() >= int64(m.maxSessions)
}

// Get returns the live session with the given ID, or ErrNotFound.
func (m *Manager) Get(id string) (*Session, error) {
	sh := m.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.sessions[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// List returns all live sessions in creation order. The creation sequence
// lives on the session itself, so listing allocates only the result slice —
// no per-call map snapshots.
func (m *Manager) List() []*Session {
	out := make([]*Session, 0, m.live.Load())
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].mgrSeq < out[j].mgrSeq })
	return out
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.RLock()
		n += len(sh.sessions)
		sh.mu.RUnlock()
	}
	return n
}

// Restore registers an externally-constructed session — typically one
// rebuilt from a persisted snapshot — under its existing ID. The session
// cap applies as in Create, and a rejection is counted like one; an ID a
// live session already holds fails with ErrExists rather than silently
// replacing it.
func (m *Manager) Restore(s *Session) error {
	if err := m.reserve(); err != nil {
		return err
	}
	sh := m.shardFor(s.ID())
	sh.mu.Lock()
	if _, ok := sh.sessions[s.ID()]; ok {
		sh.mu.Unlock()
		m.release(1)
		return fmt.Errorf("%w: %q", ErrExists, s.ID())
	}
	s.mgrSeq = m.seq.Add(1)
	sh.sessions[s.ID()] = s
	sh.mu.Unlock()
	return nil
}

// Close removes and closes the session with the given ID, invoking the
// stop and evict hooks; unknown IDs fail with ErrNotFound.
func (m *Manager) Close(id string) error {
	sh := m.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.sessions[id]
	if ok {
		delete(sh.sessions, id)
	}
	sh.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	m.release(1)
	m.count("sessions_closed_total")
	m.teardown(s)
	return nil
}

// teardown runs the removal sequence shared by Close and EvictIdle:
// mark closed (new stages fail), stop hooks (interrupt in-flight work),
// quiesce (wait for the interrupted stage to release the session), then
// evict hooks — which therefore always see the final KB version and event
// history.
func (m *Manager) teardown(s *Session) {
	s.Close()
	for _, hook := range m.stopHooks {
		hook(s)
	}
	s.Quiesce()
	for _, hook := range m.evictHooks {
		hook(s)
	}
}

// EvictIdle removes and closes every session whose last activity is older
// than maxIdle, returning the evicted IDs sorted ascending. Candidates are
// collected shard by shard under that shard's lock; teardown then runs
// concurrently (bounded by maxConcurrentTeardowns), so one session stuck in
// quiesce or a slow persist hook does not delay eviction of the others.
// Run it from a ticker to bound the memory of abandoned sessions:
//
//	go func() {
//		for range time.Tick(time.Minute) {
//			m.EvictIdle(30 * time.Minute)
//		}
//	}()
func (m *Manager) EvictIdle(maxIdle time.Duration) []string {
	cutoff := time.Now().Add(-maxIdle)
	var evicted []*Session
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id, s := range sh.sessions {
			if s.LastActive().Before(cutoff) {
				delete(sh.sessions, id)
				evicted = append(evicted, s)
			}
		}
		sh.mu.Unlock()
	}
	if len(evicted) == 0 {
		return []string{}
	}
	m.release(int64(len(evicted)))

	ids := make([]string, len(evicted))
	sem := make(chan struct{}, maxConcurrentTeardowns)
	var wg sync.WaitGroup
	for i, s := range evicted {
		ids[i] = s.ID()
		m.count("sessions_evicted_total")
		wg.Add(1)
		sem <- struct{}{}
		go func(s *Session) {
			defer wg.Done()
			defer func() { <-sem }()
			m.teardown(s)
		}(s)
	}
	wg.Wait()
	sort.Strings(ids)
	return ids
}

// randomSuffix makes session IDs unguessable across restarts.
func randomSuffix() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000"
	}
	return hex.EncodeToString(b[:])
}
