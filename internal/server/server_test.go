package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"vada"
)

func testServer(t *testing.T, opts ...vada.ManagerOption) (*Server, *httptest.Server) {
	return testServerEngine(t, nil, opts...)
}

// testServerEngine mirrors main's wiring with extra run-engine options: the
// notify hook publishes transitions to session subscribers, and closing or
// evicting a session cancels its runs.
func testServerEngine(t *testing.T, engineOpts []vada.RunEngineOption, opts ...vada.ManagerOption) (*Server, *httptest.Server) {
	t.Helper()
	s := &Server{
		registry:        vada.DefaultStageRegistry(),
		metrics:         vada.NewMetricsRegistry(),
		defaultN:        60,
		defaultSeed:     1,
		started:         time.Now(),
		sseKeepAlive:    15 * time.Second,
		sseWriteTimeout: 10 * time.Second,
		logger:          slog.New(slog.DiscardHandler),
	}
	s.runs = vada.NewRunEngine(append([]vada.RunEngineOption{
		vada.WithRunWorkers(4),
		vada.WithRunNotify(s.publishTransition),
	}, engineOpts...)...)
	s.mgr = vada.NewSessionManager(append(opts, vada.WithEvictHook(func(sess *vada.Session) {
		s.runs.CancelSession(sess.ID())
	}))...)
	t.Cleanup(s.runs.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// createSession POSTs /api/v1/sessions and returns the new session's ID.
func createSession(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: %s", resp.Status)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	id, _ := st["id"].(string)
	if id == "" {
		t.Fatalf("create session: no id in %v", st)
	}
	return id
}

func post(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := testServer(t)
	id := createSession(t, ts, `{"name":"demo"}`)
	base := ts.URL + "/api/v1/sessions/" + id

	// The result endpoint 404s before bootstrap.
	resp, _ := get(t, base+"/result")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-bootstrap result: %s", resp.Status)
	}

	// Step 1: bootstrap.
	out := post(t, base+"/bootstrap")
	if out["stage"] != "bootstrap" {
		t.Fatalf("bootstrap response: %v", out)
	}
	// Step 2: data context (defaults to the scenario's reference data).
	out = post(t, base+"/datacontext")
	score := out["score"].(map[string]any)
	if score["F1"].(float64) <= 0 {
		t.Fatalf("data-context score: %v", score)
	}
	// Step 3: feedback.
	post(t, base+"/feedback?budget=40")
	// Step 4: user context, both models.
	post(t, base+"/usercontext?model=crime")
	post(t, base+"/usercontext?model=size")

	// State lists all stage events.
	_, body := get(t, base)
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if events := st["events"].([]any); len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	if len(st["selected_mappings"].([]any)) == 0 {
		t.Fatal("no selected mappings in state")
	}

	// Paginated result rows.
	resp, body = get(t, base+"/result?limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", resp.Status)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if rows := res["rows"].([]any); len(rows) == 0 || len(rows) > 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	next := int(res["next_offset"].(float64))
	_, body = get(t, fmt.Sprintf("%s/result?limit=5&offset=%d", base, next))
	var page2 map[string]any
	if err := json.Unmarshal([]byte(body), &page2); err != nil {
		t.Fatal(err)
	}
	if page2["offset"].(float64) != float64(next) {
		t.Fatalf("page 2 offset = %v, want %d", page2["offset"], next)
	}
	if fmt.Sprint(page2["rows"].([]any)[0]) == fmt.Sprint(res["rows"].([]any)[0]) {
		t.Fatal("page 2 repeats page 1")
	}

	// Trace is non-empty text.
	resp, body = get(t, base+"/trace")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "web-extraction") {
		t.Fatalf("trace: %s / %q...", resp.Status, body[:60])
	}

	// The listing shows the session.
	_, body = get(t, ts.URL+"/api/v1/sessions")
	var list map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list["total"].(float64) != 1 {
		t.Fatalf("session list: %v", list)
	}

	// Close the session; it is gone afterwards.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %s", dresp.Status)
	}
	resp, _ = get(t, base)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("state after delete: %s", resp.Status)
	}

	// Index page serves the session-aware UI.
	resp, body = get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/api/v1/sessions") {
		t.Fatal("index page broken")
	}
}

// TestConcurrentSessions drives two sessions through all four pay-as-you-go
// steps in parallel — the multi-tenant claim, checked under -race.
func TestConcurrentSessions(t *testing.T) {
	_, ts := testServer(t)
	ids := []string{
		createSession(t, ts, `{"name":"a","n":50,"seed":1}`),
		createSession(t, ts, `{"name":"b","n":50,"seed":2}`),
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			base := ts.URL + "/api/v1/sessions/" + id
			for _, step := range []string{"bootstrap", "datacontext", "feedback?budget=20", "usercontext?model=crime"} {
				resp, err := http.Post(base+"/"+step, "", nil)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("session %s step %s: %s", id, step, resp.Status)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range ids {
		_, body := get(t, ts.URL+"/api/v1/sessions/"+id)
		var st map[string]any
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if events := st["events"].([]any); len(events) != 4 {
			t.Fatalf("session %s: %d events, want 4", id, len(events))
		}
		if st["result_rows"].(float64) <= 0 {
			t.Fatalf("session %s: empty result", id)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := testServer(t)

	// Unknown session IDs 404 everywhere.
	resp, _ := get(t, ts.URL+"/api/v1/sessions/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id state: %s", resp.Status)
	}
	presp, err := http.Post(ts.URL+"/api/v1/sessions/nope/bootstrap", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id bootstrap: %s", presp.Status)
	}

	// Malformed create config is a 400.
	cresp, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad create JSON: %s", cresp.Status)
	}

	// Unknown user-context model is a 400.
	id := createSession(t, ts, "")
	uresp, err := http.Post(ts.URL+"/api/v1/sessions/"+id+"/usercontext?model=nonsense", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model: %s", uresp.Status)
	}

	// Malformed feedback JSON is a 400.
	fresp, err := http.Post(ts.URL+"/api/v1/sessions/"+id+"/feedback", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad feedback JSON: %s", fresp.Status)
	}

	// Deleting twice: second delete 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/sessions/"+id, nil)
	d1, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	d1.Body.Close()
	d2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	d2.Body.Close()
	if d2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %s", d2.Status)
	}
}

func TestSessionCap(t *testing.T) {
	_, ts := testServer(t, vada.WithMaxSessions(1))
	createSession(t, ts, `{"n":30}`)
	resp, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", strings.NewReader(`{"n":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over cap: %s", resp.Status)
	}
}

func TestExplicitFeedbackJSON(t *testing.T) {
	s, ts := testServer(t)
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id
	post(t, base+"/bootstrap")

	sess, err := s.mgr.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	si := res.Schema.AttrIndex("street")
	pi := res.Schema.AttrIndex("postcode")
	// The unknown "Note" field checks the alias keeps its historical
	// lenient decoding (the strict codec applies to the generic route).
	item := map[string]any{
		"Street":   res.Tuples[0][si].String(),
		"Postcode": res.Tuples[0][pi].String(),
		"Attr":     "bedrooms",
		"Correct":  true,
		"Note":     "ignored by the legacy alias",
	}
	body, _ := json.Marshal([]map[string]any{item})
	resp, err := http.Post(base+"/feedback", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit feedback: %s", resp.Status)
	}
}

// pollRun GETs a run URL until the run reaches a terminal state.
func pollRun(t *testing.T, url string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		_, body := get(t, url)
		var run map[string]any
		if err := json.Unmarshal([]byte(body), &run); err != nil {
			t.Fatalf("run JSON %q: %v", body, err)
		}
		switch run["state"] {
		case "succeeded", "failed", "cancelled":
			return run
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("run never reached a terminal state")
	return nil
}

// TestAsyncStageFlow is the scripted acceptance flow: an async bootstrap
// answers 202 with a pollable run resource in well under the stage's own
// runtime, the run reaches succeeded with the stage event attached, and the
// run list exposes it.
func TestAsyncStageFlow(t *testing.T) {
	_, ts := testServer(t)

	// The 202 must come back in well under the stage's own runtime. The
	// submit is a queue append, so <50ms holds with margin; retry on fresh
	// sessions to ride out scheduler/GC stalls on loaded CI runners.
	var id string
	var resp *http.Response
	for attempt := 0; ; attempt++ {
		id = createSession(t, ts, `{"name":"async"}`)
		start := time.Now()
		var err error
		resp, err = http.Post(ts.URL+"/api/v1/sessions/"+id+"/bootstrap?async=1", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("async bootstrap: %s, want 202", resp.Status)
		}
		if elapsed < 50*time.Millisecond {
			break
		}
		resp.Body.Close()
		if attempt == 2 {
			t.Fatalf("async submit blocked for %v on %d attempts, want <50ms", elapsed, attempt+1)
		}
	}
	base := ts.URL + "/api/v1/sessions/" + id
	defer resp.Body.Close()
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, "/api/v1/sessions/"+id+"/runs/") {
		t.Fatalf("Location = %q", loc)
	}
	var run map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		t.Fatal(err)
	}
	if st := run["state"]; st != "queued" && st != "running" {
		t.Fatalf("submitted run state = %v", st)
	}

	final := pollRun(t, ts.URL+loc)
	if final["state"] != "succeeded" {
		t.Fatalf("run finished as %v (%v)", final["state"], final["error"])
	}
	ev, ok := final["event"].(map[string]any)
	if !ok || ev["stage"] != "bootstrap" {
		t.Fatalf("run event = %v, want bootstrap stage event", final["event"])
	}

	// A second async stage queues behind nothing and also succeeds.
	resp2, err := http.Post(base+"/datacontext?async=true", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("async datacontext: %s", resp2.Status)
	}
	final2 := pollRun(t, ts.URL+resp2.Header.Get("Location"))
	if final2["state"] != "succeeded" {
		t.Fatalf("datacontext run: %v (%v)", final2["state"], final2["error"])
	}

	// The run list shows both runs in submission order.
	_, body := get(t, base+"/runs")
	var list map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list["total"].(float64) != 2 {
		t.Fatalf("run list: %v", list)
	}
	runs := list["runs"].([]any)
	if runs[0].(map[string]any)["stage"] != "bootstrap" ||
		runs[1].(map[string]any)["stage"] != "data-context" {
		t.Fatalf("run order: %v", runs)
	}

	// Both stage events landed on the session.
	_, body = get(t, base)
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if events := st["events"].([]any); len(events) != 2 {
		t.Fatalf("session events = %d, want 2", len(events))
	}
}

// TestRunCancelInFlight drives HTTP cancellation of a deterministically
// blocked run: DELETE answers 202 and polling reaches state cancelled.
func TestRunCancelInFlight(t *testing.T) {
	s, ts := testServer(t)
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	started := make(chan struct{})
	run, err := s.runs.Submit(id, "blocking", func(ctx context.Context) (vada.SessionEvent, error) {
		close(started)
		<-ctx.Done()
		return vada.SessionEvent{}, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the run is in flight

	req, _ := http.NewRequest(http.MethodDelete, base+"/runs/"+run.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: %s, want 202", resp.Status)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap["cancel_requested"] != true {
		t.Fatalf("cancel response: %v", snap)
	}
	final := pollRun(t, base+"/runs/"+run.ID)
	if final["state"] != "cancelled" {
		t.Fatalf("state after cancel = %v, want cancelled", final["state"])
	}

	// A queued run cancels immediately.
	started2 := make(chan struct{})
	blocker, err := s.runs.Submit(id, "blocking", func(ctx context.Context) (vada.SessionEvent, error) {
		close(started2)
		<-ctx.Done()
		return vada.SessionEvent{}, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started2
	queued, err := s.runs.Submit(id, "queued-stage", func(ctx context.Context) (vada.SessionEvent, error) {
		return vada.SessionEvent{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	req2, _ := http.NewRequest(http.MethodDelete, base+"/runs/"+queued.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var qsnap map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&qsnap); err != nil {
		t.Fatal(err)
	}
	if qsnap["state"] != "cancelled" {
		t.Fatalf("queued cancel state = %v, want cancelled", qsnap["state"])
	}
	if _, err := s.runs.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}

	// Closing the session cancels whatever is still live.
	started3 := make(chan struct{})
	live, err := s.runs.Submit(id, "blocking", func(ctx context.Context) (vada.SessionEvent, error) {
		close(started3)
		<-ctx.Done()
		return vada.SessionEvent{}, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started3
	dreq, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, err := s.runs.Get(live.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == vada.RunCancelled {
			break
		}
		if !got.State.Terminal() && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		t.Fatalf("run after session close: %s", got.State)
	}

	// Retained runs of the closed session stay listable and pollable, so
	// clients can still collect outcomes from their 202 Location URLs.
	_, body := get(t, base+"/runs")
	var list map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list["total"].(float64) == 0 {
		t.Fatalf("closed session's retained runs not listable: %v", list)
	}
	resp3, _ := get(t, base+"/runs/"+live.ID)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("poll retained run after close: %s", resp3.Status)
	}
}

func TestRunNotFoundPaths(t *testing.T) {
	s, ts := testServer(t)
	id := createSession(t, ts, "")
	otherID := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	// Unknown run IDs 404.
	resp, _ := get(t, base+"/runs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run: %s", resp.Status)
	}
	// A run of one session is invisible under another session's path.
	run, err := s.runs.Submit(otherID, "b", func(ctx context.Context) (vada.SessionEvent, error) {
		return vada.SessionEvent{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = get(t, base+"/runs/"+run.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-session run probe: %s", resp.Status)
	}
	// Run listing of an unknown session 404s.
	resp, _ = get(t, ts.URL+"/api/v1/sessions/nope/runs")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("runs of unknown session: %s", resp.Status)
	}
}

// sseConn opens an SSE stream and returns a line reader over it.
func sseConn(t *testing.T, url string, lastEventID string) (*bufio.Scanner, func()) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("SSE connect: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		cancel()
		t.Fatalf("SSE content type: %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	return sc, func() { resp.Body.Close(); cancel() }
}

// readSSEStage reads frames until one stage event arrives, returning its id
// and decoded data. ok=false means the stream ended first.
func readSSEStage(t *testing.T, sc *bufio.Scanner) (id string, data map[string]any, ok bool) {
	t.Helper()
	isStage := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case line == "event: stage":
			isStage = true
		case strings.HasPrefix(line, "data: ") && isStage:
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &data); err != nil {
				t.Fatalf("SSE data: %v", err)
			}
			return id, data, true
		case line == "": // frame boundary
			isStage = false
		}
	}
	return "", nil, false
}

// TestSSEEvents checks the streaming contract: a connected client receives
// the bootstrap event without polling, a late subscriber gets it replayed
// from history, Last-Event-ID skips already-seen events, and closing the
// session ends the stream.
func TestSSEEvents(t *testing.T) {
	_, ts := testServer(t)
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	// Live delivery: subscribe first, then run the stage asynchronously.
	sc1, close1 := sseConn(t, base+"/events", "")
	defer close1()
	resp, err := http.Post(base+"/bootstrap?async=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async bootstrap: %s", resp.Status)
	}
	evID, data, ok := readSSEStage(t, sc1)
	if !ok || data["stage"] != "bootstrap" || evID != "1" {
		t.Fatalf("live SSE event: ok=%v id=%q data=%v", ok, evID, data)
	}

	// Replay: a fresh connection receives the bootstrap from history.
	sc2, close2 := sseConn(t, base+"/events", "")
	_, data2, ok := readSSEStage(t, sc2)
	if !ok || data2["stage"] != "bootstrap" {
		t.Fatalf("replayed SSE event: ok=%v data=%v", ok, data2)
	}

	// Resume: Last-Event-ID 1 skips the bootstrap; the next event seen is
	// the data-context stage.
	sc3, close3 := sseConn(t, base+"/events", "1")
	defer close3()
	if _, err := http.Post(base+"/datacontext", "", nil); err != nil {
		t.Fatal(err)
	}
	evID3, data3, ok := readSSEStage(t, sc3)
	if !ok || data3["stage"] != "data-context" || evID3 != "2" {
		t.Fatalf("resumed SSE event: ok=%v id=%q data=%v", ok, evID3, data3)
	}

	// Closing the session terminates connection 2's stream.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	for {
		_, _, ok := readSSEStage(t, sc2)
		if !ok {
			break // stream ended
		}
	}
	close2()
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	createSession(t, ts, "")
	resp, body := get(t, ts.URL+"/api/v1/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["sessions"].(float64) != 1 {
		t.Fatalf("healthz body: %v", h)
	}
	stats, ok := h["run_stats"].(map[string]any)
	if !ok || stats["workers"].(float64) <= 0 {
		t.Fatalf("healthz run stats: %v", h["run_stats"])
	}
}

func TestStageDiscovery(t *testing.T) {
	s, ts := testServer(t)
	resp, body := get(t, ts.URL+"/api/v1/stages")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stage discovery: %s", resp.Status)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if out["total"].(float64) != 9 {
		t.Fatalf("discovery total = %v", out["total"])
	}
	stages := out["stages"].([]any)
	want := []string{"bootstrap", "data-context", "feedback", "user-context",
		"ingest", "fetch", "export", "quality-report", "feedback-batch"}
	for i, w := range want {
		st := stages[i].(map[string]any)
		if st["name"] != w || st["description"] == "" {
			t.Fatalf("stage %d = %v, want %q with description", i, st, w)
		}
		// Every payload-taking stage documents its fields; bootstrap is the
		// only payload-less stage in the default registry.
		if w == "bootstrap" {
			if _, ok := st["payload"]; ok {
				t.Fatalf("bootstrap documents a payload: %v", st)
			}
			continue
		}
		fields, ok := st["payload"].([]any)
		if !ok || len(fields) == 0 {
			t.Fatalf("stage %q has no payload field docs: %v", w, st)
		}
		for _, f := range fields {
			fm := f.(map[string]any)
			if fm["name"] == "" || fm["doc"] == "" {
				t.Fatalf("stage %q field undocumented: %v", w, fm)
			}
		}
	}

	// A stage registered on the server registry is immediately discoverable.
	if err := s.registry.Register(vada.Stage{
		Name:        "noop",
		Description: "test stage",
		Apply: func(ctx context.Context, sess *vada.Session, _ any) (vada.SessionEvent, error) {
			return sess.Step(ctx, "noop", nil)
		},
	}); err != nil {
		t.Fatal(err)
	}
	_, body = get(t, ts.URL+"/api/v1/stages")
	if !strings.Contains(body, `"noop"`) {
		t.Fatalf("registered stage missing from discovery: %s", body)
	}
}

// TestGenericStageRoutes drives the whole lifecycle through the uniform
// POST .../stages/{name} route with JSON payloads — the legacy aliases are
// no longer load-bearing.
func TestGenericStageRoutes(t *testing.T) {
	_, ts := testServer(t)
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	postStage := func(name, payload string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(base+"/stages/"+name, "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(b)
	}

	steps := []struct{ name, payload, wantStage string }{
		{"bootstrap", "", "bootstrap"},
		{"data-context", "", "data-context"},
		{"feedback", `{"budget": 20}`, "feedback"},
		{"user-context", `{"model": "size"}`, "user-context"},
	}
	for _, step := range steps {
		resp, body := postStage(step.name, step.payload)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stage %s: %s (%s)", step.name, resp.Status, body)
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(body), &ev); err != nil {
			t.Fatal(err)
		}
		if ev["stage"] != step.wantStage || ev["type"] != "stage" {
			t.Fatalf("stage %s event = %v", step.name, ev)
		}
	}

	// Error paths: unknown stage, undecodable payloads, payload on a
	// payload-less stage — uniform 400s.
	for _, bad := range []struct{ name, payload string }{
		{"nope", ""},
		{"feedback", `{"budgte": 20}`},
		{"feedback", `{`},
		{"user-context", `{"model": "nonsense"}`},
		{"bootstrap", `{"x": 1}`},
	} {
		resp, _ := postStage(bad.name, bad.payload)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("stage %s with payload %q: %s, want 400", bad.name, bad.payload, resp.Status)
		}
	}

	// The async flow works through the generic route too.
	resp, err := http.Post(base+"/stages/feedback?async=1", "application/json", strings.NewReader(`{"budget": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async generic stage: %s", resp.Status)
	}
	final := pollRun(t, ts.URL+resp.Header.Get("Location"))
	if final["state"] != "succeeded" {
		t.Fatalf("async generic run: %v (%v)", final["state"], final["error"])
	}

	// An undecodable payload is rejected at submit even with ?async=1 —
	// no run resource is created for a request that can never apply.
	resp2, err := http.Post(base+"/stages/feedback?async=1", "application/json", strings.NewReader(`{`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("async bad payload: %s, want 400", resp2.Status)
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	id    string
	data  map[string]any
}

// readSSEFrame reads the next complete frame with a data line; ok=false
// means the stream ended.
func readSSEFrame(t *testing.T, sc *bufio.Scanner) (sseFrame, bool) {
	t.Helper()
	var f sseFrame
	hasData := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, ":"): // comment / keep-alive
		case strings.HasPrefix(line, "id: "):
			f.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f.data); err != nil {
				t.Fatalf("SSE data %q: %v", line, err)
			}
			hasData = true
		case line == "":
			if hasData {
				return f, true
			}
			f = sseFrame{}
		}
	}
	return sseFrame{}, false
}

// TestPlanFlow is the scripted acceptance flow: a 3-stage plan submitted
// via POST .../plans runs as one Run whose queued → running → per-stage →
// succeeded transitions arrive over the session SSE stream, interleaved
// with the stage events themselves.
func TestPlanFlow(t *testing.T) {
	_, ts := testServer(t)
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	sc, closeSSE := sseConn(t, base+"/events", "")
	defer closeSSE()

	plan := `{"stages": [
		{"stage": "bootstrap"},
		{"stage": "data-context"},
		{"stage": "feedback", "payload": {"budget": 20}}
	]}`
	resp, err := http.Post(base+"/plans", "application/json", strings.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("plan submit: %s (%s)", resp.Status, b)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, "/api/v1/sessions/"+id+"/runs/") {
		t.Fatalf("plan Location = %q", loc)
	}
	var submitted map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	if plan, ok := submitted["plan"].([]any); !ok || len(plan) != 3 {
		t.Fatalf("submitted plan run = %v", submitted)
	}

	// Collect transitions and stage events off the single SSE stream until
	// the run reaches a terminal state.
	var transitions []string
	var stages []string
	for {
		f, ok := readSSEFrame(t, sc)
		if !ok {
			t.Fatalf("stream ended early: transitions=%v stages=%v", transitions, stages)
		}
		switch f.event {
		case "stage":
			stages = append(stages, f.data["stage"].(string))
		case "transition":
			tr := f.data["run"].(map[string]any)
			transitions = append(transitions,
				fmt.Sprintf("%s@%d", tr["state"], int(tr["stage_index"].(float64))))
			if st := tr["state"]; st == "succeeded" || st == "failed" || st == "cancelled" {
				goto done
			}
		}
	}
done:
	wantTr := []string{"queued@0", "running@0", "running@1", "running@2", "succeeded@2"}
	if strings.Join(transitions, " ") != strings.Join(wantTr, " ") {
		t.Fatalf("transitions = %v, want %v", transitions, wantTr)
	}
	wantStages := []string{"bootstrap", "data-context", "feedback"}
	if strings.Join(stages, " ") != strings.Join(wantStages, " ") {
		t.Fatalf("stage events = %v, want %v", stages, wantStages)
	}

	// The run resource records per-stage progress and all three events.
	final := pollRun(t, ts.URL+loc)
	if final["state"] != "succeeded" {
		t.Fatalf("plan run: %v (%v)", final["state"], final["error"])
	}
	if evs := final["events"].([]any); len(evs) != 3 {
		t.Fatalf("plan run events = %d, want 3", len(evs))
	}
	// And the session history has exactly the three stage events.
	_, body := get(t, base)
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if events := st["events"].([]any); len(events) != 3 {
		t.Fatalf("session events = %d, want 3", len(events))
	}
}

func TestPlanErrorPaths(t *testing.T) {
	_, ts := testServer(t)
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	for _, bad := range []struct{ name, body string }{
		{"malformed JSON", `{`},
		{"empty plan", `{"stages": []}`},
		{"unknown stage", `{"stages": [{"stage": "nope"}]}`},
		{"bad payload", `{"stages": [{"stage": "bootstrap"}, {"stage": "feedback", "payload": {"budgte": 1}}]}`},
		{"misspelled payload key", `{"stages": [{"stage": "feedback", "paylod": {"budget": 5}}]}`},
		{"trailing data", `{"stages": [{"stage": "bootstrap"}]}{"stages": [{"stage": "feedback"}]}`},
	} {
		resp, err := http.Post(base+"/plans", "application/json", strings.NewReader(bad.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %s, want 400", bad.name, resp.Status)
		}
	}
	// No runs were created for rejected plans.
	_, body := get(t, base+"/runs")
	var list map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list["total"].(float64) != 0 {
		t.Fatalf("rejected plans left runs behind: %v", list)
	}
	// Unknown sessions 404.
	resp, err := http.Post(ts.URL+"/api/v1/sessions/nope/plans", "application/json",
		strings.NewReader(`{"stages": [{"stage": "bootstrap"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("plan on unknown session: %s", resp.Status)
	}
}

// TestPlanMidFailureStops checks that a failing stage inside a plan stops
// the remaining stages: the run fails, completed events are kept, and the
// session history only has the stages that ran.
func TestPlanMidFailureStops(t *testing.T) {
	s, ts := testServer(t)
	if err := s.registry.Register(vada.Stage{
		Name:        "explode",
		Description: "always fails",
		Apply: func(ctx context.Context, sess *vada.Session, _ any) (vada.SessionEvent, error) {
			return vada.SessionEvent{}, fmt.Errorf("explode: no")
		},
	}); err != nil {
		t.Fatal(err)
	}
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	plan := `{"stages": [{"stage": "bootstrap"}, {"stage": "explode"}, {"stage": "feedback"}]}`
	resp, err := http.Post(base+"/plans", "application/json", strings.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plan submit: %s", resp.Status)
	}
	final := pollRun(t, ts.URL+resp.Header.Get("Location"))
	if final["state"] != "failed" || !strings.Contains(final["error"].(string), "explode") {
		t.Fatalf("plan run = %v (%v)", final["state"], final["error"])
	}
	if final["stage"] != "explode" || final["stage_index"].(float64) != 1 {
		t.Fatalf("failure cursor = %v@%v", final["stage"], final["stage_index"])
	}
	if evs := final["events"].([]any); len(evs) != 1 {
		t.Fatalf("completed events = %d, want 1", len(evs))
	}
	// Only the bootstrap landed on the session; feedback never ran.
	_, body := get(t, base)
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if events := st["events"].([]any); len(events) != 1 {
		t.Fatalf("session events = %d, want 1", len(events))
	}
}

// TestPlanCancelMidway cancels an in-flight plan via the run resource:
// DELETE .../runs/{rid} answers 202 and the remaining stages never run.
func TestPlanCancelMidway(t *testing.T) {
	s, ts := testServer(t)
	started := make(chan struct{})
	if err := s.registry.Register(vada.Stage{
		Name:        "block",
		Description: "blocks until cancelled",
		Apply: func(ctx context.Context, sess *vada.Session, _ any) (vada.SessionEvent, error) {
			close(started)
			<-ctx.Done()
			return vada.SessionEvent{}, ctx.Err()
		},
	}); err != nil {
		t.Fatal(err)
	}
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	resp, err := http.Post(base+"/plans", "application/json",
		strings.NewReader(`{"stages": [{"stage": "block"}, {"stage": "bootstrap"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plan submit: %s", resp.Status)
	}
	<-started // stage 0 is in flight
	loc := resp.Header.Get("Location")
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+loc, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("plan cancel: %s, want 202", dresp.Status)
	}
	final := pollRun(t, ts.URL+loc)
	if final["state"] != "cancelled" {
		t.Fatalf("cancelled plan state = %v", final["state"])
	}
	// The bootstrap stage never ran: no session events.
	_, body := get(t, base)
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if events, _ := st["events"].([]any); len(events) != 0 {
		t.Fatalf("session events after cancel = %d, want 0", len(events))
	}
}

// TestMethodNotAllowed audits verb handling across the whole /api/v1
// surface: unmatched methods answer 405 with a correct Allow header
// instead of mixed 404/405s.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		method, path string
		wantAllow    []string
	}{
		{http.MethodPost, "/", []string{"GET", "HEAD"}},
		{http.MethodPost, "/api/v1/healthz", []string{"GET", "HEAD"}},
		{http.MethodPost, "/api/v1/stages", []string{"GET", "HEAD"}},
		{http.MethodDelete, "/api/v1/sessions", []string{"GET", "HEAD", "POST"}},
		{http.MethodPost, "/api/v1/sessions/x", []string{"DELETE", "GET", "HEAD"}},
		{http.MethodGet, "/api/v1/sessions/x/stages/bootstrap", []string{"POST"}},
		{http.MethodGet, "/api/v1/sessions/x/plans", []string{"POST"}},
		{http.MethodGet, "/api/v1/sessions/x/bootstrap", []string{"POST"}},
		{http.MethodGet, "/api/v1/sessions/x/feedback", []string{"POST"}},
		{http.MethodPost, "/api/v1/sessions/x/result", []string{"GET", "HEAD"}},
		{http.MethodPost, "/api/v1/sessions/x/events", []string{"GET", "HEAD"}},
		{http.MethodDelete, "/api/v1/sessions/x/runs", []string{"GET", "HEAD"}},
		{http.MethodPost, "/api/v1/sessions/x/runs/r1", []string{"DELETE", "GET", "HEAD"}},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %s, want 405", c.method, c.path, resp.Status)
			continue
		}
		got := map[string]bool{}
		for _, m := range strings.Split(resp.Header.Get("Allow"), ",") {
			got[strings.TrimSpace(m)] = true
		}
		for _, m := range c.wantAllow {
			if !got[m] {
				t.Errorf("%s %s: Allow = %q, missing %s", c.method, c.path, resp.Header.Get("Allow"), m)
			}
		}
	}
	// Unknown paths stay 404.
	resp, _ := get(t, ts.URL+"/no/such/path")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: %s, want 404", resp.Status)
	}
}

// TestSessionRunQueue429 checks run-engine fairness over HTTP: a session
// at its pending-run cap gets 429 with a Retry-After hint while other
// sessions keep submitting.
func TestSessionRunQueue429(t *testing.T) {
	s, ts := testServerEngine(t, []vada.RunEngineOption{
		vada.WithRunWorkers(1),
		vada.WithRunSessionQueue(1),
	})
	id := createSession(t, ts, "")
	other := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id

	// Occupy the only worker so subsequent submissions queue.
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, err := s.runs.Submit(id, "block", func(ctx context.Context) (vada.SessionEvent, error) {
		close(started)
		select {
		case <-ctx.Done():
			return vada.SessionEvent{}, ctx.Err()
		case <-release:
			return vada.SessionEvent{}, nil
		}
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	// First pending run fits the cap.
	r1, err := http.Post(base+"/bootstrap?async=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first pending: %s", r1.Status)
	}
	// Second exceeds it: 429 + Retry-After.
	r2, err := http.Post(base+"/bootstrap?async=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over session cap: %s, want 429", r2.Status)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Plans hit the same cap.
	r3, err := http.Post(base+"/plans", "application/json",
		strings.NewReader(`{"stages": [{"stage": "bootstrap"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("plan over session cap: %s, want 429", r3.Status)
	}
	// An independent session is unaffected.
	r4, err := http.Post(ts.URL+"/api/v1/sessions/"+other+"/bootstrap?async=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusAccepted {
		t.Fatalf("independent session: %s", r4.Status)
	}
}

// TestSSEKeepAlive checks the proxy-hardening contract: an idle event
// stream carries periodic keep-alive comments.
func TestSSEKeepAlive(t *testing.T) {
	s := &Server{
		registry:        vada.DefaultStageRegistry(),
		metrics:         vada.NewMetricsRegistry(),
		defaultN:        30,
		defaultSeed:     1,
		started:         time.Now(),
		sseKeepAlive:    30 * time.Millisecond,
		sseWriteTimeout: time.Second,
		logger:          slog.New(slog.DiscardHandler),
	}
	s.runs = vada.NewRunEngine(vada.WithRunWorkers(1), vada.WithRunNotify(s.publishTransition))
	s.mgr = vada.NewSessionManager()
	t.Cleanup(s.runs.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	id := createSession(t, ts, "")
	sc, closeSSE := sseConn(t, ts.URL+"/api/v1/sessions/"+id+"/events", "")
	defer closeSSE()
	deadline := time.After(10 * time.Second)
	got := make(chan string, 1)
	go func() {
		n := 0
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), ": keep-alive") {
				n++
				if n == 2 { // two ticks prove the ticker, not a one-off
					got <- sc.Text()
					return
				}
			}
		}
	}()
	select {
	case <-got:
	case <-deadline:
		t.Fatal("no keep-alive comments on an idle SSE stream")
	}
}

// TestPayloadTooLarge checks that oversized stage payloads are refused
// with 413 instead of being truncated into a misleading decode error.
func TestPayloadTooLarge(t *testing.T) {
	_, ts := testServer(t)
	id := createSession(t, ts, "")
	huge := `{"budget": 1, "items": [` + strings.Repeat(`{"Street":"x"},`, 600000) + `{"Street":"x"}]}`
	if len(huge) <= maxPayloadBytes {
		t.Fatalf("test payload only %d bytes", len(huge))
	}
	resp, err := http.Post(ts.URL+"/api/v1/sessions/"+id+"/stages/feedback",
		"application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized payload: %s, want 413", resp.Status)
	}
}

// durableServer builds the full production wiring — durability included —
// against a data directory, exactly as main does.
func durableServer(t *testing.T, dataDir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		N: 50, MaxN: 2000, Seed: 1, MaxSessions: 64,
		RunWorkers: 4, RunQueue: 256, RunSessionQueue: 16,
		SSEKeepAlive: 15 * time.Second, SSEWriteTimeout: 10 * time.Second,
		DataDir: dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getJSON fetches and decodes one JSON document.
func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s (%s)", url, resp.Status, body)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitSnapshotRun polls the session's snapshot file until it holds the
// given run in a terminal state — the durability point a kill -9 must not
// lose.
func waitSnapshotRun(t *testing.T, path, rid string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		f, err := os.Open(path)
		if err == nil {
			snap, err := vada.ReadSessionSnapshot(f)
			f.Close()
			if err == nil {
				for _, r := range snap.Runs {
					if r.ID == rid && r.State.Terminal() {
						return
					}
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("snapshot %s never recorded terminal run %s", path, rid)
}

// TestRestartRecovery is the kill -9 acceptance flow: a session wrangles a
// full four-stage plan, the process dies without any graceful shutdown, and
// a server restarted over the same -data-dir serves identical result rows,
// identical event history and the identical terminal run resource.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := durableServer(t, dir)

	id := createSession(t, ts1, `{"name":"durable"}`)
	base1 := ts1.URL + "/api/v1/sessions/" + id
	plan := `{"stages":[{"stage":"bootstrap"},{"stage":"data-context"},
		{"stage":"feedback","payload":{"budget":60}},{"stage":"user-context","payload":{"model":"crime"}}]}`
	resp, err := http.Post(base1+"/plans", "application/json", strings.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plan submit: %s", resp.Status)
	}
	loc := resp.Header.Get("Location")
	rid := loc[strings.LastIndex(loc, "/")+1:]
	final := pollRun(t, ts1.URL+loc)
	if final["state"] != "succeeded" {
		t.Fatalf("plan run: %v (%v)", final["state"], final["error"])
	}

	// Ground truth before the crash.
	wantState := getJSON(t, base1)
	wantEvents := wantState["events"].([]any)
	if len(wantEvents) != 4 {
		t.Fatalf("pre-restart events = %d, want 4", len(wantEvents))
	}
	wantRun := getJSON(t, ts1.URL+loc)
	_, wantResult := get(t, base1+"/result?limit=1000")

	// The completed run's snapshot must already be on disk — that is what a
	// kill -9 preserves. No graceful Close happens for server 1.
	waitSnapshotRun(t, filepath.Join(dir, id+".vsnap"), rid)
	ts1.Close()
	_ = s1 // deliberately never s1.Close(): this is the kill -9

	// Restart over the same directory.
	s2, ts2 := durableServer(t, dir)
	t.Cleanup(s2.Close)
	base2 := ts2.URL + "/api/v1/sessions/" + id

	// The session is listed again.
	all := getJSON(t, ts2.URL+"/api/v1/sessions")
	if all["total"].(float64) != 1 {
		t.Fatalf("restored sessions = %v", all["total"])
	}

	// Identical event history (sequence, stages, timestamps, scores).
	gotState := getJSON(t, base2)
	if gotState["id"] != id || gotState["name"] != "durable" {
		t.Fatalf("restored identity: %v/%v", gotState["id"], gotState["name"])
	}
	if !reflect.DeepEqual(gotState["events"], wantEvents) {
		t.Fatalf("events drifted across restart:\n got %v\nwant %v", gotState["events"], wantEvents)
	}

	// Identical result rows, byte for byte.
	if _, gotResult := get(t, base2+"/result?limit=1000"); gotResult != wantResult {
		t.Fatalf("result drifted across restart:\n got %s\nwant %s", gotResult, wantResult)
	}

	// The terminal run resource survives, identically.
	gotRun := getJSON(t, ts2.URL+"/api/v1/sessions/"+id+"/runs/"+rid)
	if !reflect.DeepEqual(gotRun, wantRun) {
		t.Fatalf("run drifted across restart:\n got %v\nwant %v", gotRun, wantRun)
	}

	// The restored session keeps wrangling: one more stage applies and the
	// event numbering continues.
	resp2, err := http.Post(base2+"/stages/user-context", "application/json",
		strings.NewReader(`{"model":"size"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-restart stage: %s", resp2.Status)
	}
	var ev map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev["seq"].(float64) != 5 {
		t.Fatalf("post-restart seq = %v, want 5", ev["seq"])
	}
}

// TestCloseEvictPersists proves the teardown path snapshots the final
// state: a DELETEd session's durable state is garbage-collected from the
// live directory, and the archive written under closed/ carries every
// event and stays restorable.
func TestCloseEvictPersists(t *testing.T) {
	dir := t.TempDir()
	s, ts := durableServer(t, dir)
	t.Cleanup(s.Close)

	id := createSession(t, ts, `{"name":"evicted"}`)
	base := ts.URL + "/api/v1/sessions/" + id
	if resp, body := get(t, base+"/state"); resp.StatusCode != http.StatusOK {
		t.Fatalf("state: %s", body)
	}
	resp, err := http.Post(base+"/bootstrap", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bootstrap: %s", resp.Status)
	}

	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %s", dresp.Status)
	}

	// The live pair is gone — an explicitly closed session must not
	// resurrect on the next boot.
	if _, err := os.Stat(filepath.Join(dir, id+snapshotExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("live snapshot survived DELETE: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+journalExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("live journal survived DELETE: %v", err)
	}
	// The archive carries the final state.
	f, err := os.Open(filepath.Join(dir, closedDirName, id+snapshotExt))
	if err != nil {
		t.Fatalf("close did not archive: %v", err)
	}
	defer f.Close()
	snap, err := vada.ReadSessionSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Meta.ID != id || len(snap.Events) != 1 || snap.Events[0].Stage != "bootstrap" {
		t.Fatalf("archived snapshot = %+v", snap.Meta)
	}
}

// TestExportImport round-trips a session through the HTTP surface: export,
// conflict on live re-import, delete, then import resurrects it.
func TestExportImport(t *testing.T) {
	_, ts := testServer(t)
	id := createSession(t, ts, `{"name":"exported"}`)
	base := ts.URL + "/api/v1/sessions/" + id
	post(t, base+"/bootstrap")

	resp, err := http.Get(base + "/export")
	if err != nil {
		t.Fatal(err)
	}
	envelope, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export content type = %q", ct)
	}
	if !strings.Contains(resp.Header.Get("Content-Disposition"), id+".vsnap") {
		t.Fatalf("export disposition = %q", resp.Header.Get("Content-Disposition"))
	}
	_, wantResult := get(t, base+"/result?limit=1000")

	// Importing while the ID is live conflicts.
	cresp, err := http.Post(ts.URL+"/api/v1/sessions/import", "application/octet-stream",
		bytes.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusConflict {
		t.Fatalf("import over live session: %s, want 409", cresp.Status)
	}

	// Delete, then import resurrects the session with identical state.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	iresp, err := http.Post(ts.URL+"/api/v1/sessions/import", "application/octet-stream",
		bytes.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	defer iresp.Body.Close()
	body, _ := io.ReadAll(iresp.Body)
	if iresp.StatusCode != http.StatusCreated {
		t.Fatalf("import: %s (%s)", iresp.Status, body)
	}
	if loc := iresp.Header.Get("Location"); loc != "/api/v1/sessions/"+id {
		t.Fatalf("import location = %q", loc)
	}
	var st map[string]any
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st["id"] != id || len(st["events"].([]any)) != 1 {
		t.Fatalf("imported state = %v", st)
	}
	if _, gotResult := get(t, base+"/result?limit=1000"); gotResult != wantResult {
		t.Fatalf("imported result drifted:\n got %s\nwant %s", gotResult, wantResult)
	}
	// And it wrangles on.
	post(t, base+"/datacontext")
}

// TestImportRejections covers the import guardrails: garbage envelopes,
// truncated envelopes and filesystem-hostile session IDs.
func TestImportRejections(t *testing.T) {
	_, ts := testServer(t)
	importURL := ts.URL + "/api/v1/sessions/import"

	for name, body := range map[string][]byte{
		"garbage":   []byte("definitely not a snapshot"),
		"empty":     {},
		"truncated": []byte("VADASNAP\x01\x01\x00\x00\x10\x00"),
	} {
		resp, err := http.Post(importURL, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s import: %s, want 400", name, resp.Status)
		}
	}

	// A structurally-valid snapshot whose ID would escape the data
	// directory is refused before it touches anything.
	var evil bytes.Buffer
	err := vada.WriteSessionSnapshot(&evil, &vada.SessionSnapshot{
		Meta: vada.SnapshotMeta{ID: "../evil"},
		KB:   vada.NewKB(),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(importURL, "application/octet-stream", bytes.NewReader(evil.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(msg), "not importable") {
		t.Fatalf("hostile ID import: %s (%s)", resp.Status, msg)
	}
}

// TestExportUnknownSession pins the 404.
func TestExportUnknownSession(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/v1/sessions/nope/export")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export unknown: %s", resp.Status)
	}
}

// TestImportScenarioBounds proves imported snapshots cannot smuggle
// scenario sizes past the server's -max-n policy (or negative sizes that
// would panic generation).
func TestImportScenarioBounds(t *testing.T) {
	s, ts := durableServer(t, t.TempDir()) // maxN = 2000
	t.Cleanup(s.Close)
	importURL := ts.URL + "/api/v1/sessions/import"

	build := func(n, postcodes int) []byte {
		cfg := vada.DefaultScenarioConfig()
		cfg.NProperties = n
		cfg.NPostcodes = postcodes
		var buf bytes.Buffer
		err := vada.WriteSessionSnapshot(&buf, &vada.SessionSnapshot{
			Meta: vada.SnapshotMeta{ID: "bounds-test", Scenario: &cfg},
			KB:   vada.NewKB(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	for name, body := range map[string][]byte{
		"oversized properties": build(100000, 60),
		"oversized postcodes":  build(50, 100000),
		"negative properties":  build(-1, 60),
		"negative postcodes":   build(50, -1),
	} {
		resp, err := http.Post(importURL, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %s (%s), want 400", name, resp.Status, msg)
		}
	}

	// An in-bounds scenario config still imports.
	resp, err := http.Post(importURL, "application/octet-stream", bytes.NewReader(build(50, 20)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("in-bounds import: %s, want 201", resp.Status)
	}
}

// journalServer builds the full production wiring with incremental
// durability on. Thresholds are set high so tests control compaction
// explicitly unless they pass their own.
func journalServer(t *testing.T, dataDir string, maxRecords int, maxBytes int64) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		N: 50, MaxN: 2000, Seed: 1, MaxSessions: 64,
		RunWorkers: 4, RunQueue: 256, RunSessionQueue: 16,
		SSEKeepAlive: 15 * time.Second, SSEWriteTimeout: 10 * time.Second,
		DataDir: dataDir, Journal: true,
		JournalMaxRecords: maxRecords, JournalMaxBytes: maxBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// readJournal replays a journal file's valid prefix.
func readJournal(t *testing.T, path string) []vada.JournalRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := vada.ReplayJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return res.Records
}

// waitJournalRun polls the session's journal until it carries a terminal
// run record for the given run ID — the journaled durability point a
// kill -9 must not lose.
func waitJournalRun(t *testing.T, path, rid string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil {
			if res, err := vada.ReplayJournal(bytes.NewReader(data)); err == nil {
				for _, rec := range res.Records {
					if rec.Run != nil && rec.Run.ID == rid && rec.Run.State.Terminal() {
						return
					}
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("journal %s never recorded terminal run %s", path, rid)
}

// TestRestartRecoveryJournaled is the kill -9 acceptance flow with
// incremental durability: a session completes a 4-stage plan run plus one
// more async stage run with NO compaction in between — the snapshot on disk
// stays the stageless baseline, all state lives in O(delta) journal
// appends — the process dies without any graceful shutdown, and a server
// restarted over the same -data-dir serves identical result rows,
// identical event history (Seq continues) and both terminal run resources.
func TestRestartRecoveryJournaled(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := journalServer(t, dir, 10000, 1<<30)

	id := createSession(t, ts1, `{"name":"journaled"}`)
	base1 := ts1.URL + "/api/v1/sessions/" + id
	plan := `{"stages":[{"stage":"bootstrap"},{"stage":"data-context"},
		{"stage":"feedback","payload":{"budget":60}},{"stage":"user-context","payload":{"model":"crime"}}]}`
	resp, err := http.Post(base1+"/plans", "application/json", strings.NewReader(plan))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plan submit: %s", resp.Status)
	}
	loc := resp.Header.Get("Location")
	rid := loc[strings.LastIndex(loc, "/")+1:]
	if final := pollRun(t, ts1.URL+loc); final["state"] != "succeeded" {
		t.Fatalf("plan run: %v (%v)", final["state"], final["error"])
	}
	// A second completed run after the plan: N runs since last compaction.
	resp2, err := http.Post(base1+"/stages/user-context?async=1", "application/json",
		strings.NewReader(`{"model":"size"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("async stage submit: %s", resp2.Status)
	}
	loc2 := resp2.Header.Get("Location")
	rid2 := loc2[strings.LastIndex(loc2, "/")+1:]
	if final := pollRun(t, ts1.URL+loc2); final["state"] != "succeeded" {
		t.Fatalf("stage run: %v (%v)", final["state"], final["error"])
	}

	// Ground truth before the crash.
	wantState := getJSON(t, base1)
	wantEvents := wantState["events"].([]any)
	if len(wantEvents) != 5 {
		t.Fatalf("pre-restart events = %d, want 5", len(wantEvents))
	}
	wantRun := getJSON(t, ts1.URL+loc)
	wantRun2 := getJSON(t, ts1.URL+loc2)
	_, wantResult := get(t, base1+"/result?limit=1000")

	// Both terminal runs must be journaled — that is what kill -9 preserves.
	jpath := filepath.Join(dir, id+journalExt)
	waitJournalRun(t, jpath, rid)
	waitJournalRun(t, jpath, rid2)

	// The O(delta) shape on disk: the snapshot is the creation-time
	// baseline (no events) — captured at creation, written lazily when the
	// first record was acknowledged — and completed runs appended to the
	// journal, they did not rewrite it.
	f, err := os.Open(filepath.Join(dir, id+snapshotExt))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := vada.ReadSessionSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Events) != 0 || len(baseline.Runs) != 0 {
		t.Fatalf("snapshot was rewritten (%d events, %d runs) — journaling should append instead",
			len(baseline.Events), len(baseline.Runs))
	}
	if recs := readJournal(t, jpath); len(recs) < 7 { // 5 stage + 2 run records
		t.Fatalf("journal holds %d records, want >= 7", len(recs))
	}

	ts1.Close()
	_ = s1 // deliberately never s1.Close(): this is the kill -9

	// Restart over the same directory.
	s2, ts2 := journalServer(t, dir, 10000, 1<<30)
	t.Cleanup(s2.Close)
	base2 := ts2.URL + "/api/v1/sessions/" + id

	gotState := getJSON(t, base2)
	if gotState["id"] != id || gotState["name"] != "journaled" {
		t.Fatalf("restored identity: %v/%v", gotState["id"], gotState["name"])
	}
	if !reflect.DeepEqual(gotState["events"], wantEvents) {
		t.Fatalf("events drifted across restart:\n got %v\nwant %v", gotState["events"], wantEvents)
	}
	if _, gotResult := get(t, base2+"/result?limit=1000"); gotResult != wantResult {
		t.Fatalf("result drifted across restart:\n got %s\nwant %s", gotResult, wantResult)
	}
	if gotRun := getJSON(t, base2+"/runs/"+rid); !reflect.DeepEqual(gotRun, wantRun) {
		t.Fatalf("plan run drifted across restart:\n got %v\nwant %v", gotRun, wantRun)
	}
	if gotRun2 := getJSON(t, base2+"/runs/"+rid2); !reflect.DeepEqual(gotRun2, wantRun2) {
		t.Fatalf("stage run drifted across restart:\n got %v\nwant %v", gotRun2, wantRun2)
	}

	// The restored session keeps wrangling; Seq continues into the journal.
	resp3, err := http.Post(base2+"/stages/user-context", "application/json",
		strings.NewReader(`{"model":"crime"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var ev map[string]any
	if err := json.NewDecoder(resp3.Body).Decode(&ev); err != nil {
		t.Fatal(err)
	}
	if ev["seq"].(float64) != 6 {
		t.Fatalf("post-restart seq = %v, want 6", ev["seq"])
	}
}

// TestJournalCompaction drives the threshold path end to end over the
// SYNCHRONOUS stage route (which completes no run, so compaction rides the
// stage hook's hint, not run-completion): with a 1-record threshold the
// persister folds the journal into a fresh snapshot, the journal is
// truncated to its header, and a restart over the compacted pair restores
// the full state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := journalServer(t, dir, 1, 0)

	id := createSession(t, ts1, `{"name":"compacted"}`)
	base1 := ts1.URL + "/api/v1/sessions/" + id
	post(t, base1+"/stages/bootstrap")

	// The persister compacts: snapshot gains the event, journal empties.
	snapPath := filepath.Join(dir, id+snapshotExt)
	jpath := filepath.Join(dir, id+journalExt)
	deadline := time.Now().Add(30 * time.Second)
	for {
		f, err := os.Open(snapPath)
		if err == nil {
			snap, err := vada.ReadSessionSnapshot(f)
			f.Close()
			if err == nil && len(snap.Events) == 1 {
				if recs := readJournal(t, jpath); len(recs) == 0 {
					break
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never compacted into the snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ts1.Close()
	_ = s1 // kill -9: no graceful close

	s2, ts2 := journalServer(t, dir, 1, 0)
	t.Cleanup(s2.Close)
	gotState := getJSON(t, ts2.URL+"/api/v1/sessions/"+id)
	if events := gotState["events"].([]any); len(events) != 1 {
		t.Fatalf("restored events = %d, want 1", len(events))
	}
}

// TestSnapshotGC covers snapshot retention: DELETE archives the pair under
// closed/, a default restart does NOT resurrect the session, and
// -restore-closed opts back in (moving the archive live again).
func TestSnapshotGC(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := journalServer(t, dir, 10000, 1<<30)

	id := createSession(t, ts1, `{"name":"gc"}`)
	base1 := ts1.URL + "/api/v1/sessions/" + id
	post(t, base1+"/bootstrap")
	req, _ := http.NewRequest(http.MethodDelete, base1, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %s", dresp.Status)
	}
	if _, err := os.Stat(filepath.Join(dir, id+snapshotExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("live snapshot survived DELETE: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+journalExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("live journal survived DELETE: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, closedDirName, id+snapshotExt)); err != nil {
		t.Fatalf("archive missing: %v", err)
	}
	ts1.Close()
	s1.Close()

	// Default boot: the deleted session stays gone.
	s2, ts2 := journalServer(t, dir, 10000, 1<<30)
	if total := getJSON(t, ts2.URL+"/api/v1/sessions")["total"].(float64); total != 0 {
		t.Fatalf("deleted session resurrected: %v sessions", total)
	}
	ts2.Close()
	s2.Close()

	// -restore-closed boot: the archive comes back live and is un-archived.
	s3, err := New(Config{
		N: 50, MaxN: 2000, Seed: 1, MaxSessions: 64,
		RunWorkers: 4, RunQueue: 256, RunSessionQueue: 16,
		SSEKeepAlive: 15 * time.Second, SSEWriteTimeout: 10 * time.Second,
		DataDir: dir, Journal: true, JournalMaxRecords: 10000, JournalMaxBytes: 1 << 30,
		RestoreClosed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(s3.Handler())
	t.Cleanup(func() { ts3.Close(); s3.Close() })
	gotState := getJSON(t, ts3.URL+"/api/v1/sessions/"+id)
	if events := gotState["events"].([]any); len(events) != 1 {
		t.Fatalf("restored archived events = %d, want 1", len(events))
	}
	if _, err := os.Stat(filepath.Join(dir, closedDirName, id+snapshotExt)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("archive not moved live: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+snapshotExt)); err != nil {
		t.Fatalf("unarchived session has no live snapshot: %v", err)
	}
	// And it wrangles on.
	post(t, ts3.URL+"/api/v1/sessions/"+id+"/datacontext")
}

// TestHealthzPersistStats pins the new healthz section: journal mode,
// journaled session count, record/byte totals and the last snapshot time.
func TestHealthzPersistStats(t *testing.T) {
	dir := t.TempDir()
	s, ts := journalServer(t, dir, 10000, 1<<30)
	t.Cleanup(s.Close)

	id := createSession(t, ts, "")
	post(t, ts.URL+"/api/v1/sessions/"+id+"/bootstrap") // sync: journaled via the stage hook

	h := getJSON(t, ts.URL+"/api/v1/healthz")
	persist, ok := h["persist"].(map[string]any)
	if !ok {
		t.Fatalf("healthz without persist stats: %v", h)
	}
	if persist["journal"] != true {
		t.Fatalf("persist.journal = %v", persist["journal"])
	}
	if persist["journaled_sessions"].(float64) != 1 {
		t.Fatalf("persist.journaled_sessions = %v", persist["journaled_sessions"])
	}
	if persist["journal_records"].(float64) < 1 {
		t.Fatalf("persist.journal_records = %v", persist["journal_records"])
	}
	if persist["journal_bytes"].(float64) <= 0 {
		t.Fatalf("persist.journal_bytes = %v", persist["journal_bytes"])
	}
	if _, ok := persist["last_snapshot"].(string); !ok {
		t.Fatalf("persist.last_snapshot = %v", persist["last_snapshot"])
	}

	// Ephemeral servers carry no persist section.
	_, ets := testServer(t)
	if h := getJSON(t, ets.URL+"/api/v1/healthz"); h["persist"] != nil {
		t.Fatalf("ephemeral healthz grew persist stats: %v", h["persist"])
	}
}

// TestDrainHints pins the persister's burst coalescing: queued hints
// collapse into unique session IDs in first-seen order.
func TestDrainHints(t *testing.T) {
	ch := make(chan string, 8)
	for _, id := range []string{"a", "b", "a", "c", "b", "a"} {
		ch <- id
	}
	got := drainHints(ch, "a")
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drainHints = %v, want %v", got, want)
	}
	if len(ch) != 0 {
		t.Fatalf("channel not drained: %d left", len(ch))
	}
	if got := drainHints(ch, "z"); !reflect.DeepEqual(got, []string{"z"}) {
		t.Fatalf("empty-channel drain = %v", got)
	}
}
