// Customtransducer demonstrates the extensibility claims of §2.3/§4: adding
// a new component as a transducer (a price-statistics profiler written as a
// Vadalog-dependency-driven component) and influencing orchestration with a
// custom network transducer.
package main

import (
	"context"
	"fmt"
	"log"

	"vada"
	"vada/internal/kb"
	"vada/internal/transducer"
)

func main() {
	cfg := vada.DefaultScenarioConfig()
	cfg.NProperties = 200
	sc := vada.GenerateScenario(cfg)

	// A specific network transducer (paper §2.4: "prefer instance level
	// matchers to schema level matchers").
	w := vada.BuildScenarioWrangler(sc, vada.WithNetwork(&vada.PreferNetwork{
		Inner:    vada.NewGenericNetwork(),
		Prefixes: []string{"instance-"},
	}))

	// A custom transducer: its input dependency is a Vadalog query over the
	// knowledge base — it runs as soon as a wrangling result exists, with no
	// explicit wiring to the components that produce it.
	w.Registry().MustRegister(&transducer.Func{
		TName:     "price-profiler",
		TActivity: "quality",
		Dep:       transducer.Dependency{Query: "?- md_result(N), N > 0."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			res := k.Relation("result")
			if res == nil {
				return rep, nil
			}
			pi := res.Schema.AttrIndex("price")
			if pi < 0 {
				return rep, nil
			}
			lo, hi, sum, n := 0.0, 0.0, 0.0, 0
			for _, t := range res.Tuples {
				f, ok := t[pi].AsFloat()
				if !ok {
					continue
				}
				if n == 0 || f < lo {
					lo = f
				}
				if n == 0 || f > hi {
					hi = f
				}
				sum += f
				n++
			}
			if n > 0 {
				// Assert the profile into the KB for other transducers
				// (and the trace) to see.
				k.Assert("md_price_profile", vada.NewTuple(lo, hi, sum/float64(n), n))
				rep.FactsAsserted++
				rep.Notes = append(rep.Notes,
					fmt.Sprintf("price ∈ [%.0f, %.0f], mean %.0f over %d values", lo, hi, sum/float64(n), n))
			}
			return rep, nil
		},
	})

	w.AddDataContext(sc.AddressRef)
	if _, err := w.Run(context.Background()); err != nil {
		log.Fatal(err)
	}

	fmt.Println("price profile facts in the KB:")
	for _, f := range w.KB.Facts("md_price_profile") {
		fmt.Printf("  md_price_profile%v\n", f)
	}

	fmt.Println("\ntrace steps involving the custom transducer:")
	for _, s := range w.Trace() {
		if s.Transducer == "price-profiler" {
			fmt.Printf("  #%d %s: %v\n", s.Seq, s.Transducer, s.Report.Notes)
		}
	}

	fmt.Println("\nfirst matching steps (note instance matcher preference):")
	shown := 0
	for _, s := range w.Trace() {
		if s.Activity == "matching" && shown < 4 {
			fmt.Printf("  #%d %s\n", s.Seq, s.Transducer)
			shown++
		}
	}
}
