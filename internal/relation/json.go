package relation

import (
	"encoding/json"
	"fmt"
)

// valueJSON is the wire form of a Value: kind-tagged so that null, "1" and
// 1 survive round trips.
type valueJSON struct {
	K string  `json:"k"`
	S string  `json:"s,omitempty"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	B bool    `json:"b,omitempty"`
}

// MarshalJSON implements json.Marshaler with an explicit kind tag.
func (v Value) MarshalJSON() ([]byte, error) {
	out := valueJSON{K: v.kind.String()}
	switch v.kind {
	case KindString:
		out.S = v.s
	case KindInt:
		out.I = v.i
	case KindFloat:
		out.F = v.f
	case KindBool:
		out.B = v.b
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var in valueJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	kind, err := KindFromString(in.K)
	if err != nil {
		return fmt.Errorf("relation: decoding value: %w", err)
	}
	switch kind {
	case KindNull:
		*v = Null()
	case KindString:
		*v = String(in.S)
	case KindInt:
		*v = Int(in.I)
	case KindFloat:
		*v = Float(in.F)
	case KindBool:
		*v = Bool(in.B)
	}
	return nil
}

// relationJSON is the wire form of a Relation.
type relationJSON struct {
	Name  string     `json:"name"`
	Attrs []attrJSON `json:"attrs"`
	Rows  [][]Value  `json:"rows"`
}

type attrJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// MarshalJSON implements json.Marshaler for whole relations.
func (r *Relation) MarshalJSON() ([]byte, error) {
	out := relationJSON{Name: r.Schema.Name}
	for _, a := range r.Schema.Attrs {
		out.Attrs = append(out.Attrs, attrJSON{Name: a.Name, Type: a.Type.String()})
	}
	for _, t := range r.Tuples {
		out.Rows = append(out.Rows, t)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for whole relations.
func (r *Relation) UnmarshalJSON(data []byte) error {
	var in relationJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	schema := Schema{Name: in.Name}
	for _, a := range in.Attrs {
		kind, err := KindFromString(a.Type)
		if err != nil {
			return fmt.Errorf("relation: decoding schema: %w", err)
		}
		schema.Attrs = append(schema.Attrs, Attribute{Name: a.Name, Type: kind})
	}
	r.Schema = schema
	r.Tuples = nil
	for _, row := range in.Rows {
		if len(row) != schema.Arity() {
			return fmt.Errorf("relation: decoding %s: row arity %d, want %d", in.Name, len(row), schema.Arity())
		}
		r.Tuples = append(r.Tuples, Tuple(row))
	}
	return nil
}
