package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"vada/internal/cfd"
	"vada/internal/datagen"
	"vada/internal/extract"
	"vada/internal/feedback"
	"vada/internal/fusion"
	"vada/internal/kb"
	"vada/internal/mapping"
	"vada/internal/match"
	"vada/internal/quality"
	"vada/internal/relation"
	"vada/internal/transducer"
)

// registerStandardSuite wires the standard transducers. Their declared input
// dependencies implement Table 1 of the paper plus the §2.3 walk-throughs;
// all bodies are idempotent (replace-if-changed), which is what lets the
// orchestrator quiesce.
func (w *Wrangler) registerStandardSuite() {
	w.reg.MustRegister(
		w.extractionTransducer(),
		w.feedbackTransducer(),
		w.schemaMatchingTransducer(),
		w.instanceMatchingTransducer(),
		w.cfdLearningTransducer(),
		w.mappingGenerationTransducer(),
		w.mappingExecutionTransducer(),
		w.repairTransducer(),
		w.qualityTransducer(),
		w.selectionTransducer(),
		w.fusionTransducer(),
	)
}

// sourceRelations returns the current extracted source relations by name.
func (w *Wrangler) sourceRelations(k *kb.KB) map[string]*relation.Relation {
	out := map[string]*relation.Relation{}
	for _, name := range k.RelationNames(RelSourcePrefix) {
		rel := k.Relation(name)
		if rel != nil {
			out[strings.TrimPrefix(name, RelSourcePrefix)] = rel
		}
	}
	return out
}

// primaryReference returns the first data-context relation, or nil.
func (w *Wrangler) primaryReference(k *kb.KB) *relation.Relation {
	w.mu.Lock()
	names := append([]string(nil), w.refNames...)
	w.mu.Unlock()
	if len(names) == 0 {
		return nil
	}
	return k.Relation(RelContextPrefix + names[0])
}

// extractionTransducer extracts registered-but-unextracted sources: web
// sources via wrapper induction over their pages, direct sources by copying.
func (w *Wrangler) extractionTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "web-extraction",
		TActivity: "extraction",
		Dep:       transducer.Dependency{Query: "?- src_registered(S), not src_extracted(S)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			for _, f := range k.Facts(PredSourceRegistered) {
				name := f[0].Str()
				if k.Has(PredSourceExtracted, relation.NewTuple(name)) {
					continue
				}
				w.mu.Lock()
				ws, isWeb := w.webSources[name]
				direct := w.directSources[name]
				w.mu.Unlock()

				var rel *relation.Relation
				switch {
				case isWeb:
					wr, err := extract.InduceWrapper(ws.pages[0], ws.examples)
					if err != nil {
						return rep, fmt.Errorf("extracting %s: %w", name, err)
					}
					extracted, _, err := wr.Extract(ws.pages, ws.schema)
					if err != nil {
						return rep, fmt.Errorf("extracting %s: %w", name, err)
					}
					rel = extracted
					w.mu.Lock()
					w.wrappers[name] = wr
					w.mu.Unlock()
					rep.Notes = append(rep.Notes, fmt.Sprintf("induced %s", wr))
				case direct != nil:
					rel = direct
				default:
					continue
				}
				k.PutRelation(RelSourcePrefix+name, rel)
				rep.RelationsWritten = append(rep.RelationsWritten, RelSourcePrefix+name)
				for _, pred := range []string{PredSourceExtracted, PredSourceSchema, PredSourceInstances} {
					if k.Assert(pred, relation.NewTuple(name)) {
						rep.FactsAsserted++
					}
				}
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d tuples", name, rel.Cardinality()))
			}
			return rep, nil
		},
	}
}

// feedbackTransducer assimilates feedback: per-source accuracy (the paper's
// mapping-evaluation step that revises match scores), plausibility range
// rules, and accuracy facts for the quality transducer.
func (w *Wrangler) feedbackTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "feedback-assimilation",
		TActivity: "feedback",
		Dep: transducer.Dependency{
			Query: "?- fb_item(S, P, A, C).",
			Guard: func(k *kb.KB) bool { return k.HasRelation(RelResult) },
		},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			res := k.Relation(RelResult)
			items := w.fb.Items()

			acc := feedback.AccuracyBySource(items, res, mapping.ProvenanceAttr, nil)
			rules := feedback.LearnRangeRules(items, res, w.opts.RangeRuleSupport, nil)
			w.mu.Lock()
			w.accBySource = acc
			w.rangeRules = rules
			matches := w.combinedMatchesLocked()
			w.mu.Unlock()

			var accFacts []relation.Tuple
			for src, byAttr := range acc {
				for attr, a := range byAttr {
					accFacts = append(accFacts, relation.NewTuple(src, attr, a))
				}
			}
			a, r := replaceFacts(k, PredAccuracy, nil, accFacts)
			rep.FactsAsserted += a
			rep.FactsRetracted += r

			// Republish revised matches so mapping generation re-fires when
			// scores changed (the §2.3 feedback walk-through).
			a, r = replaceFacts(k, PredMatch, nil, matchFacts(matches))
			rep.FactsAsserted += a
			rep.FactsRetracted += r

			for _, rule := range rules {
				rep.Notes = append(rep.Notes, "learned "+rule.String())
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf("%d feedback items assimilated", len(items)))
			return rep, nil
		},
	}
}

func matchFacts(ms []match.Match) []relation.Tuple {
	out := make([]relation.Tuple, 0, len(ms))
	for _, m := range ms {
		out = append(out, relation.NewTuple(m.SourceRel, m.SourceAttr, m.TargetAttr, m.Score, m.Method))
	}
	return out
}

// schemaMatchingTransducer matches source schemas against the target schema
// by name (Table 1: needs source and target schemas).
func (w *Wrangler) schemaMatchingTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "schema-matching",
		TActivity: "matching",
		Dep:       transducer.Dependency{Query: "?- src_schema(S), uc_target_schema(T)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			w.mu.Lock()
			target, ok := w.target, w.hasTarget
			w.mu.Unlock()
			if !ok {
				return rep, fmt.Errorf("schema matching: target schema missing")
			}
			var all []match.Match
			srcs := w.sourceRelations(k)
			names := sortedKeys(srcs)
			for _, name := range names {
				all = append(all, match.MatchSchemas(srcs[name].Schema, target)...)
			}
			w.mu.Lock()
			w.nameMatches = all
			facts := matchFacts(w.combinedMatchesLocked())
			w.mu.Unlock()
			a, r := replaceFacts(k, PredMatch, nil, facts)
			rep.FactsAsserted += a
			rep.FactsRetracted += r
			rep.Notes = append(rep.Notes, fmt.Sprintf("%d name-based match hypotheses over %d sources", len(all), len(names)))
			return rep, nil
		},
	}
}

// instanceMatchingTransducer matches source instances against data-context
// instances (Table 1: needs source and target instances).
func (w *Wrangler) instanceMatchingTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "instance-matching",
		TActivity: "matching",
		Dep:       transducer.Dependency{Query: "?- src_instances(S), dc_instances(D)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			instances := map[string][]relation.Value{}
			w.mu.Lock()
			refNames := append([]string(nil), w.refNames...)
			w.mu.Unlock()
			for _, name := range refNames {
				ref := k.Relation(RelContextPrefix + name)
				if ref == nil {
					continue
				}
				for attr, vals := range match.TargetInstancesFromRelation(ref, nil) {
					instances[attr] = append(instances[attr], vals...)
				}
			}
			if len(instances) == 0 {
				return rep, nil
			}
			var all []match.Match
			srcs := w.sourceRelations(k)
			for _, name := range sortedKeys(srcs) {
				all = append(all, match.MatchInstances(srcs[name], instances)...)
			}
			w.mu.Lock()
			w.instMatches = all
			facts := matchFacts(w.combinedMatchesLocked())
			w.mu.Unlock()
			a, r := replaceFacts(k, PredMatch, nil, facts)
			rep.FactsAsserted += a
			rep.FactsRetracted += r
			rep.Notes = append(rep.Notes, fmt.Sprintf("%d instance-based match hypotheses", len(all)))
			return rep, nil
		},
	}
}

// cfdLearningTransducer mines CFDs from the data context (Table 1: needs
// data examples).
func (w *Wrangler) cfdLearningTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "cfd-learning",
		TActivity: "quality-rules",
		Dep:       transducer.Dependency{Query: "?- dc_reference(R)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			w.mu.Lock()
			refNames := append([]string(nil), w.refNames...)
			w.mu.Unlock()
			var mined []cfd.CFD
			seen := map[string]bool{}
			for _, name := range refNames {
				ref := k.Relation(RelContextPrefix + name)
				if ref == nil {
					continue
				}
				for _, c := range cfd.Mine(ref, w.opts.MineOptions) {
					if !seen[c.Key()] {
						seen[c.Key()] = true
						mined = append(mined, c)
					}
				}
			}
			w.mu.Lock()
			w.cfds = mined
			w.mu.Unlock()
			var facts []relation.Tuple
			for _, c := range mined {
				facts = append(facts, relation.NewTuple(c.Key(), c.Support, c.Confidence))
			}
			a, r := replaceFacts(k, PredCFD, nil, facts)
			rep.FactsAsserted += a
			rep.FactsRetracted += r
			rep.Notes = append(rep.Notes, fmt.Sprintf("%d CFDs learned from data context", len(mined)))
			return rep, nil
		},
	}
}

// mappingGenerationTransducer generates candidate mappings from matches
// (Table 1: needs matches — "may start to evaluate when matches have been
// created").
func (w *Wrangler) mappingGenerationTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "mapping-generation",
		TActivity: "mapping",
		Dep:       transducer.Dependency{Query: "?- md_match(S, A, T, Sc, M)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			w.mu.Lock()
			target := w.target
			matches := w.combinedMatchesLocked()
			w.mu.Unlock()
			srcs := w.sourceRelations(k)
			rels := make([]*relation.Relation, 0, len(srcs))
			for _, name := range sortedKeys(srcs) {
				rels = append(rels, srcs[name])
			}
			gen := mapping.Generate(target, rels, matches, w.opts.GenOptions)
			w.mu.Lock()
			w.mappings = map[string]mapping.Mapping{}
			for _, m := range gen {
				w.mappings[m.ID] = m
			}
			w.mu.Unlock()
			var facts []relation.Tuple
			for _, m := range gen {
				facts = append(facts, relation.NewTuple(m.ID, m.BaseSource))
			}
			a, r := replaceFacts(k, PredMapping, nil, facts)
			rep.FactsAsserted += a
			rep.FactsRetracted += r
			for _, m := range gen {
				rep.Notes = append(rep.Notes, m.String())
			}
			return rep, nil
		},
	}
}

// mappingExecutionTransducer executes candidate mappings over the current
// sources. It writes res_<id> only when *its own* output changed, so repairs
// applied downstream survive re-runs with unchanged sources.
func (w *Wrangler) mappingExecutionTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "mapping-execution",
		TActivity: "execution",
		Dep:       transducer.Dependency{Query: "?- md_mapping(Id, B)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			w.mu.Lock()
			maps := make([]mapping.Mapping, 0, len(w.mappings))
			for _, m := range w.mappings {
				maps = append(maps, m)
			}
			w.mu.Unlock()
			sort.Slice(maps, func(i, j int) bool { return maps[i].ID < maps[j].ID })
			srcs := w.sourceRelations(k)

			live := map[string]bool{}
			var mappedFacts []relation.Tuple
			for _, m := range maps {
				res, err := mapping.Execute(m, srcs, w.engine)
				if err != nil {
					return rep, err
				}
				live[m.ID] = true
				mappedFacts = append(mappedFacts, relation.NewTuple(m.ID, res.Cardinality()))
				h := hashRelation(res)
				w.mu.Lock()
				prev, had := w.lastExecHash[m.ID]
				w.lastExecHash[m.ID] = h
				w.mu.Unlock()
				if had && prev == h && k.HasRelation(RelResultPrefix+m.ID) {
					continue // same output as last time: leave repairs intact
				}
				k.PutRelation(RelResultPrefix+m.ID, res)
				rep.RelationsWritten = append(rep.RelationsWritten, RelResultPrefix+m.ID)
			}
			// Drop results of mappings that no longer exist.
			for _, name := range k.RelationNames(RelResultPrefix) {
				id := strings.TrimPrefix(name, RelResultPrefix)
				if !live[id] {
					k.DropRelation(name)
					rep.RelationsWritten = append(rep.RelationsWritten, name+" (dropped)")
					w.mu.Lock()
					delete(w.lastExecHash, id)
					w.mu.Unlock()
				}
			}
			a, r := replaceFacts(k, PredMapped, nil, mappedFacts)
			rep.FactsAsserted += a
			rep.FactsRetracted += r
			return rep, nil
		},
	}
}

// repairTransducer repairs mapping results against the data context using
// the learned CFDs (§2.3 and demonstration step 2).
func (w *Wrangler) repairTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "cfd-repair",
		TActivity: "repair",
		Dep:       transducer.Dependency{Query: "?- md_cfd(K, S, C), md_mapped(Id, R)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			ref := w.primaryReference(k)
			if ref == nil {
				return rep, nil
			}
			w.mu.Lock()
			cfds := append([]cfd.CFD(nil), w.cfds...)
			w.mu.Unlock()
			opts := cfd.DefaultRepairOptions()
			for _, name := range k.RelationNames(RelResultPrefix) {
				res := k.Relation(name)
				if res == nil {
					continue
				}
				repaired, actions := cfd.RepairWithReference(res, ref, cfds, opts)
				// Postcode canonicalisation rides along with repair: the
				// reference's postcodes are clean, result postcodes may
				// carry format noise.
				actions = append(actions, canonicalisePostcodes(repaired)...)
				if len(actions) == 0 {
					continue
				}
				k.PutRelation(name, repaired)
				rep.RelationsWritten = append(rep.RelationsWritten, name)
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d repairs", name, len(actions)))
			}
			return rep, nil
		},
	}
}

// canonicalisePostcodes rewrites postcode cells into canonical form,
// reporting the changes as repair actions.
func canonicalisePostcodes(res *relation.Relation) []cfd.RepairAction {
	pi := res.Schema.AttrIndex("postcode")
	if pi < 0 {
		return nil
	}
	var actions []cfd.RepairAction
	for row := range res.Tuples {
		v := res.Tuples[row][pi]
		if v.IsNull() {
			continue
		}
		canon := datagen.CanonicalPostcode(v.String())
		if canon != v.String() {
			nv := relation.String(canon)
			actions = append(actions, cfd.RepairAction{Row: row, Attr: "postcode", Old: v, New: nv, Reason: "postcode canonicalisation"})
			res.Tuples[row][pi] = nv
		}
	}
	return actions
}

// qualityTransducer assesses every mapping result, asserting metric facts
// (§2.3: "a Quality Metric transducer becomes able to run, adding quality
// metrics on sources and mappings to the knowledge base").
func (w *Wrangler) qualityTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "quality-assessment",
		TActivity: "quality",
		Dep:       transducer.Dependency{Query: "?- md_mapped(Id, R)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			w.mu.Lock()
			cfds := append([]cfd.CFD(nil), w.cfds...)
			acc := w.accBySource
			mappingsByID := w.mappings
			w.mu.Unlock()

			var facts []relation.Tuple
			for _, name := range k.RelationNames(RelResultPrefix) {
				res := k.Relation(name)
				if res == nil {
					continue
				}
				id := strings.TrimPrefix(name, RelResultPrefix)
				var attrAcc map[string]float64
				if m, ok := mappingsByID[id]; ok {
					attrAcc = acc[m.BaseSource]
				}
				report := quality.Assess(res, cfds, attrAcc)
				for attr, v := range report.Completeness {
					if attr == mapping.ProvenanceAttr {
						continue
					}
					facts = append(facts, relation.NewTuple(id, "completeness", attr, round4(v)))
				}
				facts = append(facts, relation.NewTuple(id, "consistency", res.Schema.Name, round4(report.Consistency)))
				for attr, v := range report.Accuracy {
					facts = append(facts, relation.NewTuple(id, "accuracy", attr, round4(v)))
				}
			}
			a, r := replaceFacts(k, PredQuality, nil, facts)
			rep.FactsAsserted += a
			rep.FactsRetracted += r
			return rep, nil
		},
	}
}

// round4 stabilises floats stored as facts so replace-if-changed is not
// defeated by noise in the last bits.
func round4(f float64) float64 {
	return float64(int64(f*10000+0.5)) / 10000
}

// selectionTransducer selects the best mapping per base source using the
// user-context weights (Table 1: needs quality metrics; §2.2).
func (w *Wrangler) selectionTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "mapping-selection",
		TActivity: "selection",
		Dep:       transducer.Dependency{Query: "?- md_quality(O, M, T, V)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			w.mu.Lock()
			cfds := append([]cfd.CFD(nil), w.cfds...)
			acc := w.accBySource
			maps := make([]mapping.Mapping, 0, len(w.mappings))
			for _, m := range w.mappings {
				maps = append(maps, m)
			}
			w.mu.Unlock()
			sort.Slice(maps, func(i, j int) bool { return maps[i].ID < maps[j].ID })

			var cands []mapping.Candidate
			for _, m := range maps {
				res := k.Relation(RelResultPrefix + m.ID)
				if res == nil {
					continue
				}
				cands = append(cands, mapping.Candidate{
					Mapping: m,
					Report:  quality.Assess(res, cfds, acc[m.BaseSource]),
				})
			}
			ranked := mapping.SelectByUserContext(cands, w.userWeights(), 0)

			// Keep the best mapping per base source.
			chosen := map[string]bool{}
			var facts []relation.Tuple
			rank := 0
			for _, c := range ranked {
				if chosen[c.Mapping.BaseSource] {
					continue
				}
				chosen[c.Mapping.BaseSource] = true
				rank++
				facts = append(facts, relation.NewTuple(c.Mapping.ID, rank))
				rep.Notes = append(rep.Notes, fmt.Sprintf("rank %d: %s", rank, c.Mapping.ID))
			}
			a, r := replaceFacts(k, PredSelected, nil, facts)
			rep.FactsAsserted += a
			rep.FactsRetracted += r
			return rep, nil
		},
	}
}

// fusionTransducer unions the selected mapping results, applies feedback
// corrections and learned plausibility rules, detects duplicates across
// sources and fuses them into the final result.
func (w *Wrangler) fusionTransducer() transducer.Transducer {
	return &transducer.Func{
		TName:     "duplicate-fusion",
		TActivity: "fusion",
		Dep:       transducer.Dependency{Query: "?- md_selected(Id, R)."},
		RunFn: func(_ context.Context, k *kb.KB) (transducer.Report, error) {
			rep := transducer.Report{}
			w.mu.Lock()
			rules := append([]feedback.RangeRule(nil), w.rangeRules...)
			acc := w.accBySource
			w.mu.Unlock()

			// Union in selection-rank order. Facts() order is storage
			// order — dependent on assert/retract history live and on
			// snapshot sort order after a restore — and fusion's voting
			// tie-breaks follow union order, so anything else makes the
			// fused result depend on how the facts happen to be stored.
			selected := k.Facts(PredSelected)
			sort.Slice(selected, func(i, j int) bool { return selected[i][1].IntVal() < selected[j][1].IntVal() })
			var union *relation.Relation
			for _, f := range selected {
				res := k.Relation(RelResultPrefix + f[0].Str())
				if res == nil {
					continue
				}
				if union == nil {
					union = res
					continue
				}
				u, err := union.Union(res)
				if err != nil {
					return rep, err
				}
				union = u
			}
			if union == nil {
				return rep, nil
			}

			// Feedback: direct corrections, then learned plausibility rules.
			patched, nCorr := feedback.Apply(union, w.fb.Items(), nil)
			patched, nSupp := feedback.ApplyRangeRules(patched, rules)

			// Duplicate detection across portals, then fusion: identity is
			// the configured key pair (default: same canonical postcode
			// block, same normalised street) — attribute conflicts like the
			// bedroom error must not prevent two listings of the same
			// property from merging, they are exactly what fusion is there
			// to resolve. Trust comes from feedback-estimated per-source
			// accuracy when available.
			norm := func(s string) string { return datagen.CanonicalPostcode(s) }
			clusters := fusion.DetectDuplicates(patched,
				fusion.BlockByAttr(w.opts.FusionBlockAttr, norm),
				identityScorer(w.opts.FusionIdentityAttr),
				w.opts.FusionThreshold)
			strategy := fusion.Voting
			trust := feedback.TrustFromAccuracy(acc)
			if len(trust) > 0 {
				strategy = fusion.TrustWeighted
			}
			fused := fusion.Fuse(patched, clusters, fusion.Options{
				Strategy:       strategy,
				ProvenanceAttr: mapping.ProvenanceAttr,
				Trust:          trust,
			}).Distinct()
			fused.Schema.Name = w.targetName()

			h := hashRelation(fused)
			w.mu.Lock()
			prev := w.lastFusedHash
			w.lastFusedHash = h
			w.mu.Unlock()
			if prev != h || !k.HasRelation(RelResult) {
				k.PutRelation(RelResult, fused)
				rep.RelationsWritten = append(rep.RelationsWritten, RelResult)
				a, r := replaceFacts(k, PredResult, nil, []relation.Tuple{relation.NewTuple(fused.Cardinality())})
				rep.FactsAsserted += a
				rep.FactsRetracted += r
			}
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"union %d → %d fused tuples (%d clusters, %d corrections, %d suppressed)",
				union.Cardinality(), fused.Cardinality(), len(clusters), nCorr, nSupp))
			return rep, nil
		},
	}
}

// identityScorer scores two result tuples 1.0 when the named attribute is
// equal after case/space normalisation, else 0. For addresses, house
// numbers make street strings near-identical for *different* properties
// under string-similarity scorers, so equality is both safer and cheaper.
func identityScorer(attr string) fusion.PairScorer {
	return func(a, b relation.Tuple, schema relation.Schema) float64 {
		si := schema.AttrIndex(attr)
		if si < 0 || a[si].IsNull() || b[si].IsNull() {
			return 0
		}
		if strings.EqualFold(strings.TrimSpace(a[si].String()), strings.TrimSpace(b[si].String())) {
			return 1
		}
		return 0
	}
}

func (w *Wrangler) targetName() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hasTarget {
		return w.target.Name
	}
	return "result"
}

func sortedKeys(m map[string]*relation.Relation) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
