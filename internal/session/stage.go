package session

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"vada/internal/core"
	"vada/internal/feedback"
	"vada/internal/mcda"
	"vada/internal/relation"
)

// Sentinel errors of the stage registry.
var (
	// ErrUnknownStage reports a stage name absent from the registry.
	ErrUnknownStage = errors.New("session: unknown stage")

	// ErrBadPayload reports a stage payload that failed to decode.
	ErrBadPayload = errors.New("session: bad stage payload")

	// ErrBadStage reports an invalid or duplicate stage registration.
	ErrBadStage = errors.New("session: bad stage registration")
)

// StageRequest names a registered stage plus its raw JSON payload — the
// uniform wire form of every stage invocation, whether it arrives through
// the generic POST .../stages/{name} route or as one step of a Plan.
type StageRequest struct {
	// Stage is the registered stage name.
	Stage string `json:"stage"`
	// Payload is the stage-specific JSON payload; empty or null means the
	// stage's default behaviour.
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Plan is an ordered list of stage requests executed as one cancellable
// run: the declarative form of a whole pay-as-you-go conversation.
type Plan struct {
	Stages []StageRequest `json:"stages"`
}

// Stage is one pluggable wrangling stage: a name, a typed JSON payload
// codec, and an apply function over the session. The four paper stages are
// pre-registered by DefaultRegistry; applications add their own to extend
// the service surface without touching any HTTP handler.
type Stage struct {
	// Name is the stage's registry key and wire name.
	Name string
	// Description is the one-line summary served by stage discovery.
	Description string
	// Fields documents the stage's payload fields for discovery — the
	// machine-readable stage docs advisors and thin LLM clients need to
	// turn a suggestion into a request. Empty means the stage takes no
	// payload.
	Fields []StageField
	// Decode turns the raw JSON payload of a StageRequest into the typed
	// value Apply receives. nil means the stage takes no payload: empty,
	// null and {} decode to nil, anything else is ErrBadPayload.
	Decode func(raw json.RawMessage) (any, error)
	// Apply runs the stage against the session with the decoded payload.
	Apply func(ctx context.Context, s *Session, payload any) (Event, error)
}

// StageField documents one payload field of a stage.
type StageField struct {
	// Name is the JSON field name.
	Name string `json:"name"`
	// Doc is a one-line description of the field.
	Doc string `json:"doc"`
}

// StageInfo is the JSON-ready description of a registered stage, served by
// the discovery endpoint.
type StageInfo struct {
	Name        string       `json:"name"`
	Description string       `json:"description"`
	Payload     []StageField `json:"payload,omitempty"`
}

// Registry maps stage names to descriptors. It is safe for concurrent use;
// a server typically shares one registry across all its sessions so a
// registered stage is immediately invocable everywhere.
type Registry struct {
	mu     sync.RWMutex
	stages map[string]Stage
	order  []string
}

// NewRegistry builds an empty stage registry.
func NewRegistry() *Registry {
	return &Registry{stages: map[string]Stage{}}
}

// Register adds a stage. Empty names, nil Apply functions and duplicate
// names fail with ErrBadStage.
func (r *Registry) Register(st Stage) error {
	if st.Name == "" || st.Apply == nil {
		return fmt.Errorf("%w: need a name and an apply function", ErrBadStage)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.stages[st.Name]; ok {
		return fmt.Errorf("%w: %q already registered", ErrBadStage, st.Name)
	}
	r.stages[st.Name] = st
	r.order = append(r.order, st.Name)
	return nil
}

// MustRegister is Register that panics on error; for init-time wiring.
func (r *Registry) MustRegister(st Stage) {
	if err := r.Register(st); err != nil {
		panic(err)
	}
}

// Get returns the stage registered under name, or ErrUnknownStage.
func (r *Registry) Get(name string) (Stage, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.stages[name]
	if !ok {
		return Stage{}, fmt.Errorf("%w: %q", ErrUnknownStage, name)
	}
	return st, nil
}

// List returns the registered stages in registration order.
func (r *Registry) List() []Stage {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Stage, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.stages[name])
	}
	return out
}

// Info returns the discovery descriptions in registration order.
func (r *Registry) Info() []StageInfo {
	stages := r.List()
	out := make([]StageInfo, len(stages))
	for i, st := range stages {
		out[i] = StageInfo{Name: st.Name, Description: st.Description, Payload: st.Fields}
	}
	return out
}

// Resolve looks a request's stage up and decodes its payload — the shared
// validation step of every invocation path, so malformed requests fail
// before anything is enqueued or applied.
func (r *Registry) Resolve(req StageRequest) (Stage, any, error) {
	st, err := r.Get(req.Stage)
	if err != nil {
		return Stage{}, nil, err
	}
	decode := st.Decode
	if decode == nil {
		decode = decodeNone(st.Name)
	}
	payload, err := decode(req.Payload)
	if err != nil {
		return Stage{}, nil, fmt.Errorf("%w: stage %q: %w", ErrBadPayload, st.Name, err)
	}
	return st, payload, nil
}

// emptyPayload reports a payload with no content: absent, null or {}.
func emptyPayload(raw json.RawMessage) bool {
	trimmed := bytes.TrimSpace(raw)
	return len(trimmed) == 0 || bytes.Equal(trimmed, []byte("null")) || bytes.Equal(trimmed, []byte("{}"))
}

// decodeNone is the codec of payload-less stages.
func decodeNone(name string) func(json.RawMessage) (any, error) {
	return func(raw json.RawMessage) (any, error) {
		if !emptyPayload(raw) {
			return nil, fmt.Errorf("stage %q takes no payload", name)
		}
		return nil, nil
	}
}

// decodeStrict unmarshals a payload rejecting unknown fields and trailing
// data, so typos and concatenated values in hand-written requests surface
// as 400s instead of silently-defaulted or partially-applied runs.
func decodeStrict(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return errors.New("trailing data after payload")
	}
	return nil
}

// dataContextPayload is the wire form of the data-context stage payload.
type dataContextPayload struct {
	// Relation is the reference relation; absent means the session
	// scenario's default reference data.
	Relation *relation.Relation `json:"relation"`
}

// FeedbackPayload is the typed payload of the feedback stage.
type FeedbackPayload struct {
	// Items are explicit annotations; empty asks the scenario oracle.
	Items []feedback.Item `json:"items,omitempty"`
	// Budget caps oracle-synthesised annotations; nil defaults to 100.
	Budget *int `json:"budget,omitempty"`
}

// userContextPayload is the wire form of the user-context stage payload.
type userContextPayload struct {
	// Model names a demonstration priority model ("crime" or "size").
	Model string `json:"model"`
}

// DefaultRegistry builds a registry pre-populated with the four
// pay-as-you-go stages of the paper (§3). Each call returns a fresh
// registry, so callers can extend theirs without affecting others.
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.MustRegister(Stage{
		Name:        StageBootstrap,
		Description: "step 1: fully automatic wrangling over the registered sources",
		Apply: func(ctx context.Context, s *Session, _ any) (Event, error) {
			return s.Step(ctx, StageBootstrap, nil)
		},
	})
	r.MustRegister(Stage{
		Name:        StageDataContext,
		Description: "step 2: associate reference data ({\"relation\": ...}; default: the scenario's reference)",
		Fields: []StageField{
			{Name: "relation", Doc: "the reference relation (schema + tuples); omit for the scenario's default reference data"},
		},
		Decode: func(raw json.RawMessage) (any, error) {
			if emptyPayload(raw) {
				return (*relation.Relation)(nil), nil
			}
			var p dataContextPayload
			if err := decodeStrict(raw, &p); err != nil {
				return nil, err
			}
			return p.Relation, nil
		},
		Apply: func(ctx context.Context, s *Session, payload any) (Event, error) {
			rel, _ := payload.(*relation.Relation)
			return s.Step(ctx, StageDataContext, func(w *core.Wrangler) error {
				if rel == nil {
					if s.sc == nil {
						return core.ErrNoDataContext
					}
					rel = s.sc.AddressRef
				}
				w.AddDataContext(rel)
				return nil
			})
		},
	})
	r.MustRegister(Stage{
		Name:        StageFeedback,
		Description: "step 3: correctness annotations ({\"items\": [...], \"budget\": n}; default: 100 oracle annotations)",
		Fields: []StageField{
			{Name: "items", Doc: "explicit feedback annotations keyed by (street, postcode, attr); empty asks the scenario oracle"},
			{Name: "budget", Doc: "cap on oracle-synthesised annotations (default 100)"},
		},
		Decode: func(raw json.RawMessage) (any, error) {
			p := &FeedbackPayload{}
			if emptyPayload(raw) {
				return p, nil
			}
			if err := decodeStrict(raw, p); err != nil {
				return nil, err
			}
			return p, nil
		},
		Apply: func(ctx context.Context, s *Session, payload any) (Event, error) {
			p, _ := payload.(*FeedbackPayload)
			if p == nil {
				p = &FeedbackPayload{}
			}
			budget := 100
			if p.Budget != nil {
				budget = *p.Budget
			}
			items := p.Items
			return s.Step(ctx, StageFeedback, func(w *core.Wrangler) error {
				if len(items) == 0 && s.sc != nil {
					items = core.OracleFeedback(s.sc, w.Result(), budget, s.seed)
				}
				w.AddFeedback(items...)
				return nil
			})
		},
	})
	r.MustRegister(Stage{
		Name:        StageUserContext,
		Description: "step 4: priority model over quality criteria ({\"model\": \"crime\"|\"size\"})",
		Fields: []StageField{
			{Name: "model", Doc: "demonstration priority model name: \"crime\" (default) or \"size\""},
		},
		Decode: func(raw json.RawMessage) (any, error) {
			var p userContextPayload
			if !emptyPayload(raw) {
				if err := decodeStrict(raw, &p); err != nil {
					return nil, err
				}
			}
			m, err := core.UserContextByName(p.Model)
			if err != nil {
				return nil, err
			}
			return m, nil
		},
		Apply: func(ctx context.Context, s *Session, payload any) (Event, error) {
			m, _ := payload.(*mcda.Model)
			return s.Step(ctx, StageUserContext, func(w *core.Wrangler) error {
				w.SetUserContext(m)
				return nil
			})
		},
	})
	registerConnectorStages(r)
	registerAdviseStages(r)
	return r
}
