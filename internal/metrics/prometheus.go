package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders a Snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric family, then
// one sample line per series, histograms expanded into cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`. Series names of
// the form `base{k="v"}` produced by Name are split so the labels
// carry over into the exposition; output is sorted (family, then
// series) so it is diffable and testable byte-for-byte.
func WritePrometheus(w io.Writer, s Snapshot) error {
	type sample struct {
		labels string // label body without braces, "" for none
		line   string // fully rendered sample line(s)
	}
	type family struct {
		typ     string
		samples []sample
	}
	families := map[string]*family{}
	add := func(base, typ string, smp sample) {
		f, ok := families[base]
		if !ok {
			f = &family{typ: typ}
			families[base] = f
		}
		f.samples = append(f.samples, smp)
	}

	for name, v := range s.Counters {
		base, labels := splitSeries(name)
		add(base, "counter", sample{labels, fmt.Sprintf("%s %d\n", renderSeries(base, labels), v)})
	}
	for name, v := range s.Gauges {
		base, labels := splitSeries(name)
		add(base, "gauge", sample{labels, fmt.Sprintf("%s %d\n", renderSeries(base, labels), v)})
	}
	for name, h := range s.Histograms {
		base, labels := splitSeries(name)
		var b strings.Builder
		for _, bk := range h.Buckets {
			le := fmt.Sprintf("le=%q", bk.LE)
			fmt.Fprintf(&b, "%s %d\n", renderSeries(base+"_bucket", mergeLabels(labels, le)), bk.Count)
		}
		fmt.Fprintf(&b, "%s %g\n", renderSeries(base+"_sum", labels), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", renderSeries(base+"_count", labels), h.Count)
		add(base, "histogram", sample{labels, b.String()})
	}

	bases := make([]string, 0, len(families))
	for base := range families {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		f := families[base]
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].labels < f.samples[j].labels })
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, f.typ); err != nil {
			return err
		}
		for _, smp := range f.samples {
			if _, err := io.WriteString(w, smp.line); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitSeries separates a canonical `base{k="v",...}` series name into
// its base and label body ("" when unlabelled).
func splitSeries(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

func renderSeries(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

func mergeLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}
