package vadalog

import (
	"fmt"
	"sort"
	"strings"

	"vada/internal/relation"
)

// QueryResult returns the bindings of q's variables over an already-computed
// Result. Bindings are deduplicated and returned in derivation order.
func (r *Result) QueryResult(q *Query) ([]Binding, error) {
	rule := Rule{Head: Atom{Pred: "__query__"}, Body: q.Body}
	order, err := orderBody(rule)
	if err != nil {
		return nil, fmt.Errorf("vadalog: query %s: %w", q.String(), err)
	}
	ev := &evaluator{
		eng:       NewEngine(),
		facts:     r.store,
		nullDepth: map[string]int{},
		skolem:    map[string]relation.Value{},
	}

	var out []Binding
	seen := map[string]bool{}
	var walk func(step int, b Binding) error
	walk = func(step int, b Binding) error {
		if step == len(order) {
			ans := make(Binding, len(q.Vars))
			var key strings.Builder
			for _, v := range q.Vars {
				val, ok := b[v]
				if !ok {
					val = relation.Null()
				}
				ans[v] = val
				key.WriteString(val.Key())
				key.WriteByte('\x1f')
			}
			if !seen[key.String()] {
				seen[key.String()] = true
				out = append(out, ans)
			}
			return nil
		}
		li := order[step]
		l := q.Body[li]
		switch {
		case l.Cmp != nil:
			nb, ok, err := ev.evalComparison(l.Cmp, b)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			return walk(step+1, nb)
		case l.Negated:
			match, err := ev.atomHasMatch(l.Atom, b)
			if err != nil {
				return err
			}
			if match {
				return nil
			}
			return walk(step+1, b)
		default:
			src := ev.facts[l.Atom.Pred]
			if src == nil {
				return nil
			}
			for _, t := range src.tuples {
				nb, ok := unify(l.Atom, t, b)
				if !ok {
					continue
				}
				if err := walk(step+1, nb); err != nil {
					return err
				}
			}
			return nil
		}
	}
	if err := walk(0, Binding{}); err != nil {
		return nil, err
	}
	return out, nil
}

// Query runs program rules over the EDB and then evaluates the query against
// the combined result. An empty program string may be passed when the query
// only references EDB predicates.
func (e *Engine) Query(programSrc, querySrc string, edb EDB) ([]Binding, error) {
	prog, err := Parse(programSrc)
	if err != nil {
		return nil, err
	}
	q, err := ParseQuery(querySrc)
	if err != nil {
		return nil, err
	}
	res, err := e.Run(prog, edb)
	if err != nil {
		return nil, err
	}
	// Make sure query-only EDB predicates are loaded too.
	for _, l := range q.Body {
		if l.Atom != nil {
			if _, ok := res.store[l.Atom.Pred]; !ok {
				set := newTupleSet()
				for _, t := range edb.Facts(l.Atom.Pred) {
					set.add(t.Clone())
				}
				res.store[l.Atom.Pred] = set
			}
		}
	}
	return res.QueryResult(q)
}

// Ask reports whether the query has at least one answer over the EDB after
// applying the program. It is the primitive used for transducer input
// dependencies: "the dependency holds" means "the query is non-empty".
func (e *Engine) Ask(programSrc, querySrc string, edb EDB) (bool, error) {
	bindings, err := e.Query(programSrc, querySrc, edb)
	if err != nil {
		return false, err
	}
	return len(bindings) > 0, nil
}

// BindingsToRelation converts query bindings into a relation whose columns
// are the given variables (or all binding variables, sorted, when vars is
// empty).
func BindingsToRelation(name string, bindings []Binding, vars []string) *relation.Relation {
	if len(vars) == 0 && len(bindings) > 0 {
		for v := range bindings[0] {
			vars = append(vars, v)
		}
		sort.Strings(vars)
	}
	attrs := make([]relation.Attribute, len(vars))
	for i, v := range vars {
		attrs[i] = relation.Attribute{Name: v, Type: relation.KindString}
	}
	rel := relation.New(relation.Schema{Name: name, Attrs: attrs})
	for _, b := range bindings {
		t := make(relation.Tuple, len(vars))
		for i, v := range vars {
			t[i] = b[v]
		}
		rel.Tuples = append(rel.Tuples, t)
	}
	return rel
}
