// Package feedback implements VADA's feedback loop (§2.3, demonstration
// step 3): users annotate result tuples or cells as correct/incorrect
// (optionally supplying the right value); the feedback is assimilated into
//
//   - direct corrections applied to the result,
//   - per-source, per-attribute accuracy estimates (quality metrics),
//   - learned plausibility ranges that catch systematic extraction errors
//     (the paper's master-bedroom-area-as-bedroom-count example), and
//   - revised match scores, the "mapping evaluation transducer may identify
//     a problem with a specific match used within the mapping" walk-through.
package feedback

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"vada/internal/match"
	"vada/internal/relation"
)

// Item is one feedback annotation. Tuples are identified by their
// (street, postcode) key, the natural key of the demonstration's target.
type Item struct {
	// Street and Postcode identify the annotated result tuple.
	Street, Postcode string
	// Attr is the annotated attribute; empty for tuple-level feedback.
	Attr string
	// Correct is the user's verdict.
	Correct bool
	// Corrected optionally carries the right value (only meaningful when
	// Correct is false and Attr is set).
	Corrected relation.Value
	// HasCorrection distinguishes "wrong, here's the fix" from "wrong".
	HasCorrection bool
	// Observed is the value the user actually judged, captured at
	// annotation time. Feedback outlives result revisions, so learning
	// from Observed (rather than re-reading the evolving result) keeps
	// assimilation stable.
	Observed relation.Value
	// HasObserved marks whether Observed was captured.
	HasObserved bool
}

// String renders the item.
func (it Item) String() string {
	verdict := "correct"
	if !it.Correct {
		verdict = "incorrect"
		if it.HasCorrection {
			verdict += fmt.Sprintf(" (should be %v)", it.Corrected)
		}
	}
	scope := it.Attr
	if scope == "" {
		scope = "tuple"
	}
	return fmt.Sprintf("[%s | %s] %s: %s", it.Street, it.Postcode, scope, verdict)
}

// Store accumulates feedback items; it is safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	items []Item
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add appends items.
func (s *Store) Add(items ...Item) {
	s.mu.Lock()
	s.items = append(s.items, items...)
	s.mu.Unlock()
}

// Items returns a copy of all feedback.
func (s *Store) Items() []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Item(nil), s.items...)
}

// Len returns the number of items.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// KeyNorm normalises tuple keys for matching feedback to result rows.
type KeyNorm func(street, postcode string) string

// DefaultKeyNorm lower-cases, trims and strips postcode spacing.
func DefaultKeyNorm(street, postcode string) string {
	return strings.ToLower(strings.TrimSpace(street)) + "|" +
		strings.ToLower(strings.ReplaceAll(strings.TrimSpace(postcode), " ", ""))
}

// rowKey computes the key of a result row, ok=false when street/postcode
// are unavailable.
func rowKey(res *relation.Relation, row int, norm KeyNorm) (string, bool) {
	si := res.Schema.AttrIndex("street")
	pi := res.Schema.AttrIndex("postcode")
	if si < 0 || pi < 0 {
		return "", false
	}
	s, p := res.Tuples[row][si], res.Tuples[row][pi]
	if s.IsNull() && p.IsNull() {
		return "", false
	}
	return norm(s.String(), p.String()), true
}

// Apply patches the result with attribute-level corrections: cells the user
// corrected get the corrected value; cells marked incorrect without a
// correction are nulled (better absent than wrong — they become repairable
// or fusible later). The input is not modified. Returns the patched copy and
// the number of cells changed.
func Apply(res *relation.Relation, items []Item, norm KeyNorm) (*relation.Relation, int) {
	if norm == nil {
		norm = DefaultKeyNorm
	}
	byKey := map[string][]Item{}
	for _, it := range items {
		if it.Attr == "" || it.Correct {
			continue
		}
		byKey[norm(it.Street, it.Postcode)] = append(byKey[norm(it.Street, it.Postcode)], it)
	}
	out := res.Clone()
	changed := 0
	for row := range out.Tuples {
		key, ok := rowKey(out, row, norm)
		if !ok {
			continue
		}
		for _, it := range byKey[key] {
			ai := out.Schema.AttrIndex(it.Attr)
			if ai < 0 {
				continue
			}
			var newV relation.Value
			if it.HasCorrection {
				newV = it.Corrected
			} else {
				newV = relation.Null()
			}
			if !out.Tuples[row][ai].Equal(newV) {
				out.Tuples[row][ai] = newV
				changed++
			}
		}
	}
	return out, changed
}

// AccuracyByAttr estimates per-attribute accuracy from attribute-level
// feedback: correct / (correct + incorrect). Attributes without feedback are
// absent from the map.
func AccuracyByAttr(items []Item) map[string]float64 {
	pos, neg := map[string]int{}, map[string]int{}
	for _, it := range items {
		if it.Attr == "" {
			continue
		}
		if it.Correct {
			pos[it.Attr]++
		} else {
			neg[it.Attr]++
		}
	}
	out := map[string]float64{}
	for attr := range pos {
		out[attr] = float64(pos[attr]) / float64(pos[attr]+neg[attr])
	}
	for attr := range neg {
		if _, ok := out[attr]; !ok {
			out[attr] = 0
		}
	}
	return out
}

// AccuracyBySource estimates accuracy per (source, attribute) by joining
// feedback items to result rows via the key and reading the row's provenance
// column. This is what lets feedback localise blame to one source's match
// even when several sources populate the same target attribute.
func AccuracyBySource(items []Item, res *relation.Relation, provAttr string, norm KeyNorm) map[string]map[string]float64 {
	if norm == nil {
		norm = DefaultKeyNorm
	}
	pi := res.Schema.AttrIndex(provAttr)
	if pi < 0 {
		return nil
	}
	type rowRef struct {
		src string
		row int
	}
	srcOf := map[string][]rowRef{}
	for row := range res.Tuples {
		key, ok := rowKey(res, row, norm)
		if !ok || res.Tuples[row][pi].IsNull() {
			continue
		}
		srcOf[key] = append(srcOf[key], rowRef{src: res.Tuples[row][pi].String(), row: row})
	}
	pos := map[string]map[string]int{}
	neg := map[string]map[string]int{}
	bump := func(m map[string]map[string]int, src, attr string) {
		if m[src] == nil {
			m[src] = map[string]int{}
		}
		m[src][attr]++
	}
	for _, it := range items {
		if it.Attr == "" {
			continue
		}
		ai := res.Schema.AttrIndex(it.Attr)
		for _, ref := range srcOf[norm(it.Street, it.Postcode)] {
			// With a captured observation, only blame/credit rows actually
			// holding the judged value (duplicate keys otherwise smear
			// feedback across sources).
			if it.HasObserved && ai >= 0 && !res.Tuples[ref.row][ai].Equal(it.Observed) {
				continue
			}
			// A "+"-joined provenance (base+enrichment) attributes blame to
			// the base source.
			base := ref.src
			if i := strings.IndexByte(base, '+'); i > 0 {
				base = base[:i]
			}
			if it.Correct {
				bump(pos, base, it.Attr)
			} else {
				bump(neg, base, it.Attr)
			}
		}
	}
	out := map[string]map[string]float64{}
	srcs := map[string]bool{}
	for s := range pos {
		srcs[s] = true
	}
	for s := range neg {
		srcs[s] = true
	}
	for s := range srcs {
		out[s] = map[string]float64{}
		attrs := map[string]bool{}
		for a := range pos[s] {
			attrs[a] = true
		}
		for a := range neg[s] {
			attrs[a] = true
		}
		for a := range attrs {
			p, n := pos[s][a], neg[s][a]
			out[s][a] = float64(p) / float64(p+n)
		}
	}
	return out
}

// RangeRule is a learned numeric plausibility interval for an attribute.
type RangeRule struct {
	// Attr is the constrained attribute.
	Attr string
	// Min and Max bound plausible values (inclusive).
	Min, Max float64
	// Support is the number of confirmed-correct examples behind the rule.
	Support int
}

// String renders the rule.
func (r RangeRule) String() string {
	return fmt.Sprintf("%s ∈ [%g, %g] (support %d)", r.Attr, r.Min, r.Max, r.Support)
}

// LearnRangeRules derives plausibility intervals per numeric attribute from
// feedback: the interval spans the values confirmed correct, and a bound is
// only emitted on a side where (a) at least minSupport confirmations exist
// and (b) at least one value marked incorrect falls beyond it — i.e. the
// rule would actually have caught a known error. The unconstrained side is
// left open (±MaxFloat), so a rule learned from high outliers (the paper's
// master-bedroom-area error) never suppresses legitimately small values the
// sample happened to miss.
//
// Values are read from Item.Observed when captured, falling back to the
// current result otherwise; learning from observations keeps rules stable
// as the result evolves.
func LearnRangeRules(items []Item, res *relation.Relation, minSupport int, norm KeyNorm) []RangeRule {
	if norm == nil {
		norm = DefaultKeyNorm
	}
	type span struct {
		lo, hi  float64
		support int
	}
	good := map[string]*span{}
	var badVals = map[string][]float64{}

	valueAt := func(it Item) (float64, bool) {
		if it.HasObserved {
			return it.Observed.AsFloat()
		}
		ai := res.Schema.AttrIndex(it.Attr)
		if ai < 0 {
			return 0, false
		}
		for row := range res.Tuples {
			key, ok := rowKey(res, row, norm)
			if !ok || key != norm(it.Street, it.Postcode) {
				continue
			}
			if f, ok := res.Tuples[row][ai].AsFloat(); ok {
				return f, true
			}
		}
		return 0, false
	}

	for _, it := range items {
		if it.Attr == "" {
			continue
		}
		f, ok := valueAt(it)
		if !ok {
			continue
		}
		if it.Correct {
			s := good[it.Attr]
			if s == nil {
				s = &span{lo: f, hi: f}
				good[it.Attr] = s
			}
			if f < s.lo {
				s.lo = f
			}
			if f > s.hi {
				s.hi = f
			}
			s.support++
		} else {
			badVals[it.Attr] = append(badVals[it.Attr], f)
		}
	}

	const open = math.MaxFloat64
	var out []RangeRule
	attrs := make([]string, 0, len(good))
	for a := range good {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	for _, a := range attrs {
		s := good[a]
		if s.support < minSupport {
			continue
		}
		caughtBelow, caughtAbove := false, false
		for _, b := range badVals[a] {
			if b < s.lo {
				caughtBelow = true
			}
			if b > s.hi {
				caughtAbove = true
			}
		}
		if !caughtBelow && !caughtAbove {
			continue
		}
		rule := RangeRule{Attr: a, Min: -open, Max: open, Support: s.support}
		if caughtBelow {
			rule.Min = s.lo
		}
		if caughtAbove {
			rule.Max = s.hi
		}
		out = append(out, rule)
	}
	return out
}

// ApplyRangeRules nulls cells falling outside learned plausibility ranges,
// returning the patched copy and the count of suppressed cells. Nulled cells
// become targets for repair and fusion instead of silently wrong values.
func ApplyRangeRules(res *relation.Relation, rules []RangeRule) (*relation.Relation, int) {
	out := res.Clone()
	suppressed := 0
	for _, r := range rules {
		ai := out.Schema.AttrIndex(r.Attr)
		if ai < 0 {
			continue
		}
		for row := range out.Tuples {
			f, ok := out.Tuples[row][ai].AsFloat()
			if !ok {
				continue
			}
			if f < r.Min || f > r.Max {
				out.Tuples[row][ai] = relation.Null()
				suppressed++
			}
		}
	}
	return out, suppressed
}

// ReviseMatchScores implements the paper's mapping-evaluation step: matches
// whose target attribute has a low estimated accuracy for their source get
// their score multiplied by that accuracy. Matches without evidence are
// unchanged.
func ReviseMatchScores(matches []match.Match, accBySource map[string]map[string]float64) []match.Match {
	out := make([]match.Match, len(matches))
	copy(out, matches)
	for i, m := range out {
		if byAttr, ok := accBySource[m.SourceRel]; ok {
			if acc, ok := byAttr[m.TargetAttr]; ok {
				out[i].Score = m.Score * acc
				out[i].Method = m.Method + "+feedback"
			}
		}
	}
	return out
}

// TrustFromAccuracy summarises per-source accuracy into a scalar trust
// weight per source (mean across attributes), for trust-weighted fusion.
func TrustFromAccuracy(accBySource map[string]map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for src, byAttr := range accBySource {
		sum, n := 0.0, 0
		for _, a := range byAttr {
			sum += a
			n++
		}
		if n > 0 {
			out[src] = sum / float64(n)
		}
	}
	return out
}
