// Command vada-server is the multi-tenant wrangling service: any number of
// concurrent pay-as-you-go sessions (each the four-panel demonstration of
// Figure 3) behind a versioned JSON API, plus the single-page UI and the
// browsable orchestration trace.
//
//	vada-server -addr :8080 -max-sessions 64 -idle-timeout 30m
//
// Endpoints:
//
//	GET    /                                   the single-page UI
//	POST   /api/v1/sessions                    create a session {"name","n","seed"}
//	GET    /api/v1/sessions                    list session states
//	GET    /api/v1/sessions/{id}               session state
//	DELETE /api/v1/sessions/{id}               close the session
//	POST   /api/v1/sessions/{id}/bootstrap     step 1: automatic bootstrapping
//	POST   /api/v1/sessions/{id}/datacontext   step 2: associate reference data
//	POST   /api/v1/sessions/{id}/feedback      step 3: oracle feedback (?budget=N) or JSON items
//	POST   /api/v1/sessions/{id}/usercontext   step 4: ?model=crime|size
//	GET    /api/v1/sessions/{id}/result        result rows (?limit=&offset=, paginated)
//	GET    /api/v1/sessions/{id}/trace         orchestration trace (text)
//	GET    /api/v1/sessions/{id}/state         session state (alias)
//
// Sessions are independent: each wraps its own Wrangler and scenario, holds
// its own lock, and wrangles fully in parallel with every other session.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"mime"
	"net/http"
	"strconv"
	"time"

	"vada"
)

// maxResultPageSize bounds one result page; larger limits are clamped.
const maxResultPageSize = 1000

// server holds the session manager and the per-session scenario defaults.
type server struct {
	mgr         *vada.SessionManager
	defaultN    int
	defaultSeed int64
	maxN        int
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 300, "default scenario size for new sessions")
	maxN := flag.Int("max-n", 2000, "largest scenario size a client may request")
	seed := flag.Int64("seed", 1, "default scenario seed for new sessions")
	maxSessions := flag.Int("max-sessions", 64, "live session cap (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Minute, "evict sessions idle this long (0 = never)")
	flag.Parse()

	s := &server{
		mgr: vada.NewSessionManager(
			vada.WithMaxSessions(*maxSessions),
			vada.WithEvictHook(func(sess *vada.Session) {
				log.Printf("vada-server: session %s closed", sess.ID())
			}),
		),
		defaultN:    *n,
		defaultSeed: *seed,
		maxN:        *maxN,
	}
	if *idleTimeout > 0 {
		go func() {
			for range time.Tick(*idleTimeout / 4) {
				for _, id := range s.mgr.EvictIdle(*idleTimeout) {
					log.Printf("vada-server: session %s evicted (idle)", id)
				}
			}
		}()
	}

	log.Printf("vada-server: serving /api/v1/sessions on %s (cap %d)", *addr, *maxSessions)
	log.Fatal(http.ListenAndServe(*addr, s.routes()))
}

// routes wires the versioned API.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("POST /api/v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /api/v1/sessions", s.handleList)
	mux.HandleFunc("GET /api/v1/sessions/{id}", s.handleState)
	mux.HandleFunc("GET /api/v1/sessions/{id}/state", s.handleState)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", s.handleClose)
	mux.HandleFunc("POST /api/v1/sessions/{id}/bootstrap", s.handleBootstrap)
	mux.HandleFunc("POST /api/v1/sessions/{id}/datacontext", s.handleDataContext)
	mux.HandleFunc("POST /api/v1/sessions/{id}/feedback", s.handleFeedback)
	mux.HandleFunc("POST /api/v1/sessions/{id}/usercontext", s.handleUserContext)
	mux.HandleFunc("GET /api/v1/sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/sessions/{id}/trace", s.handleTrace)
	return mux
}

// createRequest is the POST /api/v1/sessions body; zero values take the
// server defaults.
type createRequest struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Seed int64  `json:"seed"`
}

func (s *server) handleCreate(rw http.ResponseWriter, r *http.Request) {
	req := createRequest{N: s.defaultN, Seed: s.defaultSeed}
	if r.Body != nil && r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, "bad session config JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if req.N <= 0 {
		req.N = s.defaultN
	}
	if s.maxN > 0 && req.N > s.maxN {
		http.Error(rw, fmt.Sprintf("scenario size %d exceeds the server limit %d", req.N, s.maxN),
			http.StatusBadRequest)
		return
	}
	// Cheap pre-check so a full server rejects before scenario generation;
	// Create remains the authoritative (race-free) gate.
	if s.mgr.AtCap() {
		writeError(rw, vada.ErrSessionLimit)
		return
	}
	cfg := vada.DefaultScenarioConfig()
	cfg.NProperties = req.N
	cfg.Seed = req.Seed
	sc := vada.GenerateScenario(cfg)
	sess, err := s.mgr.Create(vada.BuildScenarioWrangler(sc),
		vada.WithSessionName(req.Name), vada.WithScenario(sc, req.Seed))
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSONStatus(rw, http.StatusCreated, sess.State())
}

func (s *server) handleList(rw http.ResponseWriter, _ *http.Request) {
	sessions := s.mgr.List()
	states := make([]vada.SessionState, len(sessions))
	for i, sess := range sessions {
		states[i] = sess.State()
	}
	writeJSON(rw, map[string]any{"total": len(states), "sessions": states})
}

func (s *server) handleState(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSON(rw, sess.State())
}

func (s *server) handleClose(rw http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Close(r.PathValue("id")); err != nil {
		writeError(rw, err)
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}

func (s *server) handleBootstrap(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	ev, err := sess.Bootstrap(r.Context())
	writeEvent(rw, ev, err)
}

func (s *server) handleDataContext(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	// nil relation: the session defaults to its scenario's reference data.
	ev, err := sess.AddDataContext(r.Context(), nil)
	writeEvent(rw, ev, err)
}

func (s *server) handleFeedback(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	budget := intQuery(r, "budget", 100)
	var items []vada.FeedbackItem
	if mt, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type")); mt == "application/json" {
		if err := json.NewDecoder(r.Body).Decode(&items); err != nil {
			http.Error(rw, "bad feedback JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	ev, err := sess.AddFeedback(r.Context(), items, budget)
	writeEvent(rw, ev, err)
}

func (s *server) handleUserContext(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	uc, err := vada.UserContextByName(r.URL.Query().Get("model"))
	if err != nil {
		writeError(rw, err)
		return
	}
	ev, err := sess.SetUserContext(r.Context(), uc)
	writeEvent(rw, ev, err)
}

func (s *server) handleResult(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	res, err := sess.Result()
	if err != nil {
		writeError(rw, err)
		return
	}
	limit := intQuery(r, "limit", 100)
	offset := intQuery(r, "offset", 0)
	if limit <= 0 {
		limit = 100
	}
	if limit > maxResultPageSize {
		limit = maxResultPageSize
	}
	if offset < 0 {
		offset = 0
	}
	total := res.Cardinality()
	rows := make([]map[string]string, 0, min(limit, max(0, total-offset)))
	for i := offset; i < total && len(rows) < limit; i++ {
		row := map[string]string{}
		for j, a := range res.Schema.Attrs {
			row[a.Name] = res.Tuples[i][j].String()
		}
		rows = append(rows, row)
	}
	out := map[string]any{"total": total, "offset": offset, "limit": limit, "rows": rows}
	if next := offset + len(rows); next < total {
		out["next_offset"] = next
	}
	writeJSON(rw, out)
}

func (s *server) handleTrace(rw http.ResponseWriter, r *http.Request) {
	sess, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeError(rw, err)
		return
	}
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(rw, vada.TraceString(sess.Trace()))
}

func (s *server) handleIndex(rw http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(rw, r)
		return
	}
	rw.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(rw, indexHTML)
}

// writeEvent renders a stage outcome or maps its error onto a status code.
func writeEvent(rw http.ResponseWriter, ev vada.SessionEvent, err error) {
	if err != nil {
		writeError(rw, err)
		return
	}
	writeJSON(rw, ev)
}

// writeError maps the API's sentinel errors onto HTTP status codes.
func writeError(rw http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, vada.ErrSessionNotFound), errors.Is(err, vada.ErrNoResult):
		status = http.StatusNotFound
	case errors.Is(err, vada.ErrUnknownUserContext), errors.Is(err, vada.ErrNoDataContext):
		status = http.StatusBadRequest
	case errors.Is(err, vada.ErrSessionLimit):
		status = http.StatusTooManyRequests
	case errors.Is(err, vada.ErrSessionClosed):
		status = http.StatusGone
	}
	http.Error(rw, err.Error(), status)
}

func intQuery(r *http.Request, key string, def int) int {
	if v := r.URL.Query().Get(key); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return def
}

func writeJSON(rw http.ResponseWriter, v any) {
	writeJSONStatus(rw, http.StatusOK, v)
}

func writeJSONStatus(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	enc := json.NewEncoder(rw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

// indexHTML is the single-page mirror of Figure 3, now session-aware: it
// creates (or reuses) a session via /api/v1 and drives the four steps.
const indexHTML = `<!DOCTYPE html>
<html><head><title>VADA — pay-as-you-go data wrangling</title>
<style>
 body { font-family: system-ui, sans-serif; margin: 1.5em; max-width: 72em; }
 h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.2em; }
 button { margin-right: .5em; padding: .4em .8em; }
 table { border-collapse: collapse; font-size: .85em; margin-top: .5em; }
 td, th { border: 1px solid #ccc; padding: .2em .5em; text-align: left; }
 pre { background: #f6f6f6; padding: .8em; overflow-x: auto; font-size: .8em; }
 .row { display: flex; gap: 2em; flex-wrap: wrap; }
 .col { flex: 1; min-width: 24em; }
 #sid { color: #666; font-size: .85em; }
</style></head>
<body>
<h1>VADA — pay-as-you-go data wrangling (SIGMOD'17 demonstration)</h1>
<p>Work through the four steps of the demonstration; each one adds information
and re-triggers exactly the transducers whose input dependencies now hold.
Every browser tab gets its own wrangling session.</p>
<p id="sid">(creating session…)</p>
<div>
 <button onclick="step('bootstrap')">1&nbsp;Bootstrap</button>
 <button onclick="step('datacontext')">2&nbsp;Add data context</button>
 <button onclick="step('feedback?budget=100')">3&nbsp;Give feedback</button>
 <button onclick="step('usercontext?model=crime')">4a&nbsp;Crime user context</button>
 <button onclick="step('usercontext?model=size')">4b&nbsp;Size user context</button>
 <button onclick="closeSession()">Close session</button>
</div>
<div class="row">
 <div class="col"><h2>Stages</h2><pre id="stages">(none yet)</pre>
  <h2>Selected mappings</h2><pre id="selected"></pre></div>
 <div class="col"><h2>Sessions on this server</h2><pre id="sessions"></pre></div>
</div>
<h2>Result (first rows)</h2>
<div id="result">(bootstrap first)</div>
<h2>Orchestration trace</h2>
<pre id="trace"></pre>
<script>
let sid = null;
const api = p => '/api/v1/sessions' + p;
async function ensureSession() {
  if (sid) return sid;
  const resp = await fetch(api(''), {method: 'POST', headers: {'Content-Type': 'application/json'},
    body: JSON.stringify({name: 'ui'})});
  sid = (await resp.json()).id;
  document.getElementById('sid').textContent = 'session ' + sid;
  return sid;
}
async function refresh() {
  if (!sid) return;
  const st = await (await fetch(api('/' + sid))).json();
  document.getElementById('selected').textContent = (st.selected_mappings||[]).join('\n');
  document.getElementById('stages').textContent = (st.events||[]).map(e =>
     e.stage.padEnd(14) + (e.score ? ' F1=' + e.score.F1.toFixed(3) +
     ' val-acc=' + e.score.ValueAccuracy.toFixed(3) : '')).join('\n') || '(none yet)';
  document.getElementById('trace').textContent = await (await fetch(api('/' + sid + '/trace'))).text();
  const all = await (await fetch(api(''))).json();
  document.getElementById('sessions').textContent = (all.sessions||[]).map(s =>
     s.id + (s.name ? ' (' + s.name + ')' : '') + ' — ' + (s.events||[]).length + ' stages, ' +
     s.result_rows + ' rows').join('\n');
  const res = await fetch(api('/' + sid + '/result?limit=25'));
  if (res.ok) {
    const data = await res.json();
    if (data.rows.length) {
      const cols = Object.keys(data.rows[0]).sort();
      let html = '<table><tr>' + cols.map(c => '<th>'+c+'</th>').join('') + '</tr>';
      for (const r of data.rows)
        html += '<tr>' + cols.map(c => '<td>'+(r[c]||'∅')+'</td>').join('') + '</tr>';
      html += '</table><p>' + data.total + ' rows total</p>';
      document.getElementById('result').innerHTML = html;
    }
  }
}
async function step(path) {
  await ensureSession();
  await fetch(api('/' + sid + '/' + path), {method: 'POST'});
  await refresh();
}
async function closeSession() {
  if (!sid) return;
  await fetch(api('/' + sid), {method: 'DELETE'});
  sid = null;
  document.getElementById('sid').textContent = '(session closed — reload to start another)';
}
ensureSession().then(refresh);
</script>
</body></html>
`
