package transducer

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vada/internal/kb"
	"vada/internal/relation"
	"vada/internal/vadalog"
)

func tup(vals ...any) relation.Tuple { return relation.NewTuple(vals...) }

// counterTransducer asserts out(N) facts when in(_) facts exist, once per
// new KB version.
func counterTransducer(name, activity, inPred, outPred string) *Func {
	return &Func{
		TName:     name,
		TActivity: activity,
		Dep:       Dependency{Query: "?- " + inPred + "(X)."},
		RunFn: func(_ context.Context, k *kb.KB) (Report, error) {
			// Idempotent: derive out facts from in facts.
			rep := Report{}
			for _, t := range k.Facts(inPred) {
				if k.Assert(outPred, t) {
					rep.FactsAsserted++
				}
			}
			return rep, nil
		},
	}
}

func TestDependencySatisfied(t *testing.T) {
	k := kb.New()
	eng := vadalog.NewEngine()
	d := Dependency{Query: "?- p(X)."}
	ok, err := d.Satisfied(k, eng)
	if err != nil || ok {
		t.Fatalf("empty KB: %v %v", ok, err)
	}
	k.Assert("p", tup(1))
	ok, err = d.Satisfied(k, eng)
	if err != nil || !ok {
		t.Fatalf("after assert: %v %v", ok, err)
	}
}

func TestDependencyWithProgramAndGuard(t *testing.T) {
	k := kb.New()
	eng := vadalog.NewEngine()
	d := Dependency{
		Program: "both(X) :- a(X), b(X).",
		Query:   "?- both(X).",
		Guard:   func(k *kb.KB) bool { return k.HasRelation("bulk") },
	}
	k.Assert("a", tup("v"))
	if ok, _ := d.Satisfied(k, eng); ok {
		t.Fatal("b missing: unsatisfied")
	}
	k.Assert("b", tup("v"))
	if ok, _ := d.Satisfied(k, eng); ok {
		t.Fatal("guard fails: unsatisfied")
	}
	k.PutRelation("bulk", relation.New(relation.NewSchema("bulk", "x")))
	if ok, _ := d.Satisfied(k, eng); !ok {
		t.Fatal("all conditions hold: satisfied")
	}
}

func TestDependencyNegation(t *testing.T) {
	// Table-1 style: ready when sources registered but not yet processed.
	k := kb.New()
	eng := vadalog.NewEngine()
	d := Dependency{Query: "?- registered(S), not processed(S)."}
	k.Assert("registered", tup("s1"))
	if ok, _ := d.Satisfied(k, eng); !ok {
		t.Fatal("unprocessed source: ready")
	}
	k.Assert("processed", tup("s1"))
	if ok, _ := d.Satisfied(k, eng); ok {
		t.Fatal("all processed: not ready")
	}
}

func TestEmptyQueryAlwaysSatisfied(t *testing.T) {
	d := Dependency{}
	if ok, _ := d.Satisfied(kb.New(), vadalog.NewEngine()); !ok {
		t.Fatal("empty dependency should be satisfied")
	}
}

func TestRegistryDuplicateRejected(t *testing.T) {
	r := NewRegistry()
	a := counterTransducer("t1", "x", "in", "out")
	if err := r.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(counterTransducer("t1", "x", "in", "out")); err == nil {
		t.Fatal("duplicate should fail")
	}
	if r.Get("t1") != a || r.Get("ghost") != nil {
		t.Fatal("Get wrong")
	}
	if len(r.All()) != 1 {
		t.Fatal("All wrong")
	}
}

func TestOrchestratorPipelineRunsToQuiescence(t *testing.T) {
	k := kb.New()
	reg := NewRegistry()
	reg.MustRegister(
		counterTransducer("stage2", "mapping", "mid", "final"),
		counterTransducer("stage1", "matching", "seed", "mid"),
	)
	k.Assert("seed", tup("a"))
	k.Assert("seed", tup("b"))

	o := NewOrchestrator(k, reg)
	steps, err := o.RunToQuiescence(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if k.Count("final") != 2 {
		t.Fatalf("final facts = %d, want 2", k.Count("final"))
	}
	// Data flow, not registration order: stage1 must run before stage2
	// produces anything (activity ranking puts matching before mapping).
	if steps[0].Transducer != "stage1" {
		t.Fatalf("first step = %s", steps[0].Transducer)
	}
	// Quiescent now: another run does nothing.
	more, err := o.RunToQuiescence(context.Background())
	if err != nil || len(more) != 0 {
		t.Fatalf("quiescent system ran %d more steps (%v)", len(more), err)
	}
}

func TestOrchestratorReactsToNewInformation(t *testing.T) {
	k := kb.New()
	reg := NewRegistry()
	reg.MustRegister(counterTransducer("t", "matching", "seed", "out"))
	o := NewOrchestrator(k, reg)

	steps, _ := o.RunToQuiescence(context.Background())
	if len(steps) != 0 {
		t.Fatal("nothing to do yet")
	}
	k.Assert("seed", tup("x"))
	steps, _ = o.RunToQuiescence(context.Background())
	if len(steps) == 0 || k.Count("out") != 1 {
		t.Fatal("new fact should trigger the transducer")
	}
	// New context information re-triggers (the §3 demonstration flow).
	k.Assert("seed", tup("y"))
	steps, _ = o.RunToQuiescence(context.Background())
	if k.Count("out") != 2 {
		t.Fatal("second fact should re-trigger")
	}
	if len(o.Trace()) < 2 {
		t.Fatal("trace should accumulate across calls")
	}
}

func TestOrchestratorErrorRecorded(t *testing.T) {
	k := kb.New()
	reg := NewRegistry()
	boom := errors.New("boom")
	reg.MustRegister(&Func{
		TName: "bad", TActivity: "matching",
		Dep: Dependency{Query: "?- seed(X)."},
		RunFn: func(_ context.Context, _ *kb.KB) (Report, error) {
			return Report{}, boom
		},
	})
	k.Assert("seed", tup(1))
	o := NewOrchestrator(k, reg)
	steps, err := o.RunToQuiescence(context.Background())
	if err != nil {
		t.Fatalf("orchestration should survive transducer failure: %v", err)
	}
	if len(steps) != 1 || !errors.Is(steps[0].Err, boom) {
		t.Fatalf("steps = %+v", steps)
	}
	// Failed transducer is not retried until new information arrives.
	more, _ := o.RunToQuiescence(context.Background())
	if len(more) != 0 {
		t.Fatal("failure must not livelock")
	}
}

func TestOrchestratorSelfWritesDoNotRetrigger(t *testing.T) {
	// A transducer's own assertions must not re-trigger it: lastRun records
	// the post-run version, so a self-asserting transducer quiesces.
	k := kb.New()
	reg := NewRegistry()
	n := 0
	reg.MustRegister(&Func{
		TName: "selfwriter", TActivity: "matching",
		Dep: Dependency{Query: "?- seed(X)."},
		RunFn: func(_ context.Context, k *kb.KB) (Report, error) {
			n++
			k.Assert("seed", tup(n))
			return Report{FactsAsserted: 1}, nil
		},
	})
	k.Assert("seed", tup(0))
	o := NewOrchestrator(k, reg, WithMaxSteps(10))
	steps, err := o.RunToQuiescence(context.Background())
	if err != nil || len(steps) != 1 {
		t.Fatalf("self-writer should run exactly once: %d steps, %v", len(steps), err)
	}
}

func TestOrchestratorMaxStepsGuard(t *testing.T) {
	// Two mutually-triggering transducers livelock; MaxSteps must trip.
	k := kb.New()
	reg := NewRegistry()
	na, nb := 0, 0
	reg.MustRegister(
		&Func{
			TName: "ping", TActivity: "matching",
			Dep: Dependency{Query: "?- a(X)."},
			RunFn: func(_ context.Context, k *kb.KB) (Report, error) {
				na++
				k.Assert("b", tup(na))
				return Report{FactsAsserted: 1}, nil
			},
		},
		&Func{
			TName: "pong", TActivity: "matching",
			Dep: Dependency{Query: "?- b(X)."},
			RunFn: func(_ context.Context, k *kb.KB) (Report, error) {
				nb++
				k.Assert("a", tup(nb+1_000_000))
				return Report{FactsAsserted: 1}, nil
			},
		},
	)
	k.Assert("a", tup(0))
	o := NewOrchestrator(k, reg, WithMaxSteps(10))
	if _, err := o.RunToQuiescence(context.Background()); err == nil {
		t.Fatal("mutual livelock must trip MaxSteps")
	}
}

func TestOrchestratorContextCancel(t *testing.T) {
	k := kb.New()
	reg := NewRegistry()
	reg.MustRegister(counterTransducer("t", "matching", "seed", "out"))
	k.Assert("seed", tup(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := NewOrchestrator(k, reg)
	if _, err := o.RunToQuiescence(ctx); err == nil {
		t.Fatal("cancelled context should abort")
	}
}

func TestGenericNetworkPhaseOrdering(t *testing.T) {
	g := NewGenericNetwork()
	ext := counterTransducer("e", "extraction", "a", "b")
	mapg := counterTransducer("m", "mapping", "a", "b")
	sel := g.Select([]Transducer{mapg, ext}, nil, nil)
	if sel != ext {
		t.Fatal("extraction should outrank mapping")
	}
	unknown := counterTransducer("u", "weird-activity", "a", "b")
	sel = g.Select([]Transducer{unknown, mapg}, nil, nil)
	if sel != mapg {
		t.Fatal("unknown activities rank last")
	}
	if g.Select(nil, nil, nil) != nil {
		t.Fatal("no ready = nil")
	}
}

func TestPreferNetwork(t *testing.T) {
	inner := NewGenericNetwork()
	p := &PreferNetwork{Inner: inner, Prefixes: []string{"instance-"}}
	schemaM := counterTransducer("schema-matcher", "matching", "a", "b")
	instM := counterTransducer("instance-matcher", "matching", "a", "b")
	if p.Select([]Transducer{schemaM, instM}, nil, nil) != instM {
		t.Fatal("prefix preference should win")
	}
	if p.Select([]Transducer{schemaM}, nil, nil) != schemaM {
		t.Fatal("fallback to inner policy")
	}
	if p.Name() == "" || inner.Name() == "" {
		t.Fatal("names must render")
	}
}

func TestResetEligibility(t *testing.T) {
	k := kb.New()
	reg := NewRegistry()
	runs := 0
	reg.MustRegister(&Func{
		TName: "idem", TActivity: "matching",
		Dep: Dependency{Query: "?- seed(X)."},
		RunFn: func(_ context.Context, _ *kb.KB) (Report, error) {
			runs++
			return Report{}, nil
		},
	})
	k.Assert("seed", tup(1))
	o := NewOrchestrator(k, reg)
	_, _ = o.RunToQuiescence(context.Background())
	if runs != 1 {
		t.Fatalf("runs = %d", runs)
	}
	o.ResetEligibility()
	_, _ = o.RunToQuiescence(context.Background())
	if runs != 2 {
		t.Fatalf("reset should re-run: %d", runs)
	}
}

func TestTraceRendering(t *testing.T) {
	k := kb.New()
	reg := NewRegistry()
	reg.MustRegister(counterTransducer("stage1", "matching", "seed", "out"))
	k.Assert("seed", tup("a"))
	o := NewOrchestrator(k, reg)
	steps, _ := o.RunToQuiescence(context.Background())
	text := TraceString(steps)
	if !strings.Contains(text, "stage1") || !strings.Contains(text, "matching") {
		t.Fatalf("trace missing content:\n%s", text)
	}
	if !strings.Contains(text, "ready:") {
		t.Fatal("trace should list ready transducers")
	}
}

func TestTableOneInputDependencies(t *testing.T) {
	// Encodes Table 1 of the paper: each activity's transducer with its
	// input dependency, verified to become ready exactly when the
	// dependency's facts arrive. This is experiment E-T1's core assertion.
	k := kb.New()
	eng := vadalog.NewEngine()

	deps := map[string]Dependency{
		"Schema Matching":    {Query: "?- src_schema(S), uc_target_schema(T)."},
		"Instance Matching":  {Query: "?- src_instances(S), dc_instances(T)."},
		"Mapping Generation": {Query: "?- md_match(S, A, T2)."},
		"Mapping Selection":  {Query: "?- md_quality(M, Q, V)."},
		"CFD Learning":       {Query: "?- dc_reference(R)."},
	}
	// Nothing ready on the empty KB.
	for name, d := range deps {
		if ok, err := d.Satisfied(k, eng); err != nil || ok {
			t.Fatalf("%s ready on empty KB (%v)", name, err)
		}
	}
	// Assert inputs one activity at a time and check exactly the right
	// transducers become ready.
	k.Assert("src_schema", tup("rightmove"))
	if ok, _ := deps["Schema Matching"].Satisfied(k, eng); ok {
		t.Fatal("schema matching needs both schemas")
	}
	k.Assert("uc_target_schema", tup("target"))
	if ok, _ := deps["Schema Matching"].Satisfied(k, eng); !ok {
		t.Fatal("schema matching should be ready")
	}
	if ok, _ := deps["Instance Matching"].Satisfied(k, eng); ok {
		t.Fatal("instance matching needs instances")
	}
	k.Assert("src_instances", tup("rightmove"))
	k.Assert("dc_instances", tup("address"))
	if ok, _ := deps["Instance Matching"].Satisfied(k, eng); !ok {
		t.Fatal("instance matching should be ready")
	}
	k.Assert("md_match", tup("rightmove", "price", "price"))
	if ok, _ := deps["Mapping Generation"].Satisfied(k, eng); !ok {
		t.Fatal("mapping generation should be ready")
	}
	k.Assert("dc_reference", tup("address"))
	if ok, _ := deps["CFD Learning"].Satisfied(k, eng); !ok {
		t.Fatal("CFD learning should be ready")
	}
	if ok, _ := deps["Mapping Selection"].Satisfied(k, eng); ok {
		t.Fatal("mapping selection needs quality metrics")
	}
	k.Assert("md_quality", tup("m_rightmove", "completeness", 0.8))
	if ok, _ := deps["Mapping Selection"].Satisfied(k, eng); !ok {
		t.Fatal("mapping selection should be ready")
	}
}
