package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vada"
)

// tracedServer hosts the full New() wiring — tracer, journal durability,
// runtime sampler — the way cmd/vada-server does, so trace tests exercise
// the same span tree production pays for.
func tracedServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		N: 30, MaxN: 500, Seed: 1,
		RunWorkers: 2, RunQueue: 64, RunSessionQueue: 8,
		SSEKeepAlive: 15 * time.Second, SSEWriteTimeout: 10 * time.Second,
		DataDir: t.TempDir(), Journal: true,
		JournalMaxRecords: 512, JournalMaxBytes: 8 << 20,
		Trace:  true,
		Logger: slog.New(slog.DiscardHandler),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON POSTs a body and returns the response (caller closes).
func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitTerminal polls a run's Location until it leaves queued/running.
func waitTerminal(t *testing.T, ts *httptest.Server, loc string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		var run struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&run)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch run.State {
		case "succeeded", "failed", "cancelled":
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never reached a terminal state", loc)
}

// flattenTree walks a span tree depth-first, collecting span names.
func flattenTree(nodes []*vada.TraceNode, into map[string][]*vada.TraceNode) {
	for _, n := range nodes {
		into[n.Name] = append(into[n.Name], n)
		flattenTree(n.Children, into)
	}
}

// getTree fetches GET /api/v1/traces/{tid} and returns the parsed forest.
func getTree(t *testing.T, ts *httptest.Server, tid string) []*vada.TraceNode {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/traces/" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET traces/%s: %s", tid, resp.Status)
	}
	var out struct {
		TraceID string            `json:"trace_id"`
		Spans   []*vada.TraceNode `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != tid {
		t.Fatalf("tree names trace %q, want %q", out.TraceID, tid)
	}
	return out.Spans
}

// TestTracePlanSpanTree is the tentpole acceptance path: one plan POST
// yields a retrievable span tree carrying the HTTP root, the queue wait,
// one span per plan stage and the fsynced journal appends beneath them.
func TestTracePlanSpanTree(t *testing.T) {
	_, ts := tracedServer(t, nil)
	id := createSession(t, ts, `{"n":30}`)

	resp := postJSON(t, ts.URL+"/api/v1/sessions/"+id+"/plans",
		`{"stages":[{"stage":"bootstrap"},{"stage":"data-context"}]}`)
	loc := resp.Header.Get("Location")
	tp := resp.Header.Get("Traceparent")
	reqID := resp.Header.Get("X-Request-Id")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("plan: %s", resp.Status)
	}
	if reqID == "" {
		t.Fatal("no X-Request-Id on the plan response")
	}
	tid, _, ok := vada.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("plan response Traceparent %q does not parse", tp)
	}
	waitTerminal(t, ts, loc)

	byName := map[string][]*vada.TraceNode{}
	flattenTree(getTree(t, ts, tid), byName)

	roots := byName["http POST"]
	if len(roots) != 1 {
		t.Fatalf("want 1 http POST root span, got %d (names: %v)", len(roots), keys(byName))
	}
	root := roots[0]
	if root.Attrs["request_id"] != reqID {
		t.Errorf("root request_id = %q, want %q", root.Attrs["request_id"], reqID)
	}
	if root.Attrs["route"] != "POST /api/v1/sessions/{id}/plans" {
		t.Errorf("root route = %q", root.Attrs["route"])
	}
	if len(byName["run"]) != 1 {
		t.Fatalf("want 1 run span, got %d", len(byName["run"]))
	}
	run := byName["run"][0]
	if run.ParentID != root.SpanID {
		t.Errorf("run span parent = %q, want the http root %q", run.ParentID, root.SpanID)
	}
	if run.Attrs["session"] != id {
		t.Errorf("run span session = %q, want %q", run.Attrs["session"], id)
	}
	if run.Attrs["plan"] != "bootstrap,data-context" {
		t.Errorf("run span plan = %q", run.Attrs["plan"])
	}
	if run.Attrs["state"] != "succeeded" {
		t.Errorf("run span state = %q", run.Attrs["state"])
	}
	if len(byName["queue-wait"]) != 1 {
		t.Errorf("want 1 queue-wait span, got %d", len(byName["queue-wait"]))
	}
	for _, stage := range []string{"stage:bootstrap", "stage:data-context"} {
		spans := byName[stage]
		if len(spans) != 1 {
			t.Fatalf("want 1 %s span, got %d", stage, len(spans))
		}
		if spans[0].ParentID != run.SpanID {
			t.Errorf("%s parent = %q, want the run span %q", stage, spans[0].ParentID, run.SpanID)
		}
	}
	// Journaling is on, so each completed stage fsyncs one append under its
	// stage span.
	if len(byName["journal.append"]) < 1 {
		t.Fatalf("no journal.append span in the tree (names: %v)", keys(byName))
	}
	for _, ja := range byName["journal.append"] {
		parentIsStage := false
		for _, stage := range []string{"stage:bootstrap", "stage:data-context"} {
			for _, sp := range byName[stage] {
				parentIsStage = parentIsStage || ja.ParentID == sp.SpanID
			}
		}
		if !parentIsStage {
			t.Errorf("journal.append parent %q is not a stage span", ja.ParentID)
		}
	}

	// The listing resolves the same trace by session filter.
	resp2, err := http.Get(ts.URL + "/api/v1/traces?session=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var listing struct {
		Enabled bool                `json:"enabled"`
		Traces  []vada.TraceSummary `json:"traces"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if !listing.Enabled {
		t.Fatal("listing says tracing is disabled")
	}
	found := false
	for _, sum := range listing.Traces {
		found = found || sum.TraceID == tid
	}
	if !found {
		t.Fatalf("trace %s missing from ?session=%s listing (%d traces)", tid, id, len(listing.Traces))
	}
}

func keys(m map[string][]*vada.TraceNode) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceInboundTraceparent checks W3C interop: a request carrying a
// valid traceparent joins that trace (same trace ID out, remote span as the
// root's parent) — even on a GET, which is otherwise unsampled.
func TestTraceInboundTraceparent(t *testing.T) {
	_, ts := tracedServer(t, nil)
	const tid = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parent = "00f067aa0ba902b7"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-"+tid+"-"+parent+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gotTID, _, ok := vada.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok || gotTID != tid {
		t.Fatalf("response Traceparent %q does not continue trace %s", resp.Header.Get("Traceparent"), tid)
	}
	tree := getTree(t, ts, tid)
	if len(tree) != 1 {
		t.Fatalf("want 1 root (remote parent is not retained), got %d", len(tree))
	}
	if tree[0].ParentID != parent {
		t.Errorf("root parent = %q, want the inbound span %q", tree[0].ParentID, parent)
	}

	// Plain GETs without a traceparent stay unsampled: no root span, no
	// Traceparent response header — but still a request ID.
	resp2, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("Traceparent"); got != "" {
		t.Errorf("unsampled GET answered Traceparent %q", got)
	}
	if resp2.Header.Get("X-Request-Id") == "" {
		t.Error("unsampled GET lost its X-Request-Id")
	}
}

// TestTraceDisabled checks the off switch: the listing stays well-formed,
// individual lookups 404, and responses carry no Traceparent.
func TestTraceDisabled(t *testing.T) {
	_, ts := tracedServer(t, func(cfg *Config) { cfg.Trace = false })
	id := createSession(t, ts, "")

	resp := postJSON(t, ts.URL+"/api/v1/sessions/"+id+"/stages/bootstrap", `{}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bootstrap: %s", resp.Status)
	}
	if got := resp.Header.Get("Traceparent"); got != "" {
		t.Errorf("tracing disabled but response carries Traceparent %q", got)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("request IDs must not depend on tracing")
	}

	listResp, err := http.Get(ts.URL + "/api/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var listing struct {
		Enabled bool `json:"enabled"`
		Total   int  `json:"total"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Enabled || listing.Total != 0 {
		t.Fatalf("disabled listing = %+v", listing)
	}
	oneResp, err := http.Get(ts.URL + "/api/v1/traces/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	oneResp.Body.Close()
	if oneResp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET traces/{id} with tracing off: %s, want 404", oneResp.Status)
	}
}

// syncBuffer is a goroutine-safe log sink for handler-under-test output.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestSlowRunLogged checks the slow-span warning: with a 1ns threshold
// every finished span is "slow", so a completed stage must leave a
// structured warning carrying its trace ID.
func TestSlowRunLogged(t *testing.T) {
	buf := &syncBuffer{}
	_, ts := tracedServer(t, func(cfg *Config) {
		cfg.TraceSlowThreshold = time.Nanosecond
		cfg.Logger = slog.New(slog.NewTextHandler(buf, nil))
	})
	id := createSession(t, ts, "")
	resp := postJSON(t, ts.URL+"/api/v1/sessions/"+id+"/stages/bootstrap", `{}`)
	tp := resp.Header.Get("Traceparent")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bootstrap: %s", resp.Status)
	}
	tid, _, ok := vada.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("no Traceparent on the stage response (got %q)", tp)
	}
	logs := buf.String()
	if !strings.Contains(logs, "slow span") {
		t.Fatalf("no slow-span warning in logs:\n%s", logs)
	}
	if !strings.Contains(logs, "trace_id="+tid) {
		t.Errorf("slow-span warnings do not carry trace %s:\n%s", tid, logs)
	}
	if !strings.Contains(logs, "span=stage:bootstrap") {
		t.Errorf("no stage:bootstrap slow-span warning:\n%s", logs)
	}
}

// TestMetriczPrometheus checks the text exposition branch of metricz and
// that JSON stays the default.
func TestMetriczPrometheus(t *testing.T) {
	_, ts := tracedServer(t, nil)
	// Prime at least one counted request.
	resp, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	prom, err := http.Get(ts.URL + "/api/v1/metricz?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer prom.Body.Close()
	if ct := prom.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(prom.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		"# TYPE http_requests_total counter",
		`http_requests_total{code="200",route="GET /api/v1/healthz"}`,
		"# TYPE runtime_goroutines gauge",
		"# TYPE http_request_seconds histogram",
		"http_request_seconds_bucket{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Accept: text/plain selects the same branch; the default stays JSON.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/metricz", nil)
	req.Header.Set("Accept", "text/plain")
	viaAccept, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	viaAccept.Body.Close()
	if ct := viaAccept.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Accept: text/plain Content-Type = %q", ct)
	}
	asJSON, err := http.Get(ts.URL + "/api/v1/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer asJSON.Body.Close()
	if ct := asJSON.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("default metricz Content-Type = %q", ct)
	}
	var snap vada.MetricsSnapshot
	if err := json.NewDecoder(asJSON.Body).Decode(&snap); err != nil {
		t.Fatalf("default metricz is not the JSON snapshot: %v", err)
	}
}

// TestHealthzRuntime checks the runtime roll-up: the sampler's goroutine
// and heap gauges surface in the health probe.
func TestHealthzRuntime(t *testing.T) {
	_, ts := tracedServer(t, nil)
	resp, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Runtime struct {
			Goroutines     int64 `json:"goroutines"`
			HeapInuseBytes int64 `json:"heap_inuse_bytes"`
		} `json:"runtime"`
		Traces *int `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Runtime.Goroutines <= 0 {
		t.Errorf("healthz runtime.goroutines = %d, want > 0", out.Runtime.Goroutines)
	}
	if out.Runtime.HeapInuseBytes <= 0 {
		t.Errorf("healthz runtime.heap_inuse_bytes = %d, want > 0", out.Runtime.HeapInuseBytes)
	}
	if out.Traces == nil {
		t.Error("healthz omits the trace count with tracing on")
	}
}

// TestPprofGated checks /debug/pprof/ exists exactly when Config.Pprof is
// set.
func TestPprofGated(t *testing.T) {
	for _, on := range []bool{true, false} {
		_, ts := tracedServer(t, func(cfg *Config) { cfg.Pprof = on })
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusNotFound
		if on {
			want = http.StatusOK
		}
		if resp.StatusCode != want {
			t.Errorf("pprof=%v: GET /debug/pprof/ = %d, want %d", on, resp.StatusCode, want)
		}
	}
}

// TestTraceparentEchoFormat pins the outbound header shape so external
// tracers can rely on it.
func TestTraceparentEchoFormat(t *testing.T) {
	_, ts := tracedServer(t, nil)
	resp := postJSON(t, ts.URL+"/api/v1/sessions", `{"n":30}`)
	resp.Body.Close()
	tp := resp.Header.Get("Traceparent")
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 || parts[3] != "01" {
		t.Fatalf("Traceparent %q is not 00-<32hex>-<16hex>-01", tp)
	}
	if _, _, ok := vada.ParseTraceparent(tp); !ok {
		t.Fatalf("own Traceparent %q does not round-trip ParseTraceparent", tp)
	}
}

// TestRequestIDAdopted checks X-Request-Id propagation: a client-supplied
// ID is echoed; an absent one is minted.
func TestRequestIDAdopted(t *testing.T) {
	_, ts := tracedServer(t, nil)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "client-chosen-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-7" {
		t.Errorf("X-Request-Id = %q, want the client's", got)
	}
	// Oversize IDs are replaced, bounding the log field.
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v1/healthz", nil)
	req2.Header.Set("X-Request-Id", strings.Repeat("x", 200))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); len(got) > 64 || got == "" {
		t.Errorf("oversize X-Request-Id not replaced (got %d bytes)", len(got))
	}
}

// TestSyncStageTraced covers the synchronous dispatch path: a blocking
// stage POST produces stage + journal.append spans directly under the HTTP
// root (no run span — nothing was enqueued).
func TestSyncStageTraced(t *testing.T) {
	_, ts := tracedServer(t, nil)
	id := createSession(t, ts, "")
	resp := postJSON(t, ts.URL+"/api/v1/sessions/"+id+"/stages/bootstrap", `{}`)
	tp := resp.Header.Get("Traceparent")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bootstrap: %s", resp.Status)
	}
	tid, _, _ := vada.ParseTraceparent(tp)
	byName := map[string][]*vada.TraceNode{}
	flattenTree(getTree(t, ts, tid), byName)
	if len(byName["run"]) != 0 {
		t.Errorf("sync stage produced a run span")
	}
	stages := byName["stage:bootstrap"]
	if len(stages) != 1 {
		t.Fatalf("want 1 stage:bootstrap span, got %d (names: %v)", len(stages), keys(byName))
	}
	roots := byName["http POST"]
	if len(roots) != 1 || stages[0].ParentID != roots[0].SpanID {
		t.Errorf("stage span is not a direct child of the http root")
	}
	if len(byName["journal.append"]) < 1 {
		t.Errorf("sync stage left no journal.append span")
	}
}
