package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"vada"
)

func testServer(t *testing.T, opts ...vada.ManagerOption) (*server, *httptest.Server) {
	t.Helper()
	s := &server{mgr: vada.NewSessionManager(opts...), defaultN: 60, defaultSeed: 1}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

// createSession POSTs /api/v1/sessions and returns the new session's ID.
func createSession(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: %s", resp.Status)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	id, _ := st["id"].(string)
	if id == "" {
		t.Fatalf("create session: no id in %v", st)
	}
	return id
}

func post(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := testServer(t)
	id := createSession(t, ts, `{"name":"demo"}`)
	base := ts.URL + "/api/v1/sessions/" + id

	// The result endpoint 404s before bootstrap.
	resp, _ := get(t, base+"/result")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-bootstrap result: %s", resp.Status)
	}

	// Step 1: bootstrap.
	out := post(t, base+"/bootstrap")
	if out["stage"] != "bootstrap" {
		t.Fatalf("bootstrap response: %v", out)
	}
	// Step 2: data context (defaults to the scenario's reference data).
	out = post(t, base+"/datacontext")
	score := out["score"].(map[string]any)
	if score["F1"].(float64) <= 0 {
		t.Fatalf("data-context score: %v", score)
	}
	// Step 3: feedback.
	post(t, base+"/feedback?budget=40")
	// Step 4: user context, both models.
	post(t, base+"/usercontext?model=crime")
	post(t, base+"/usercontext?model=size")

	// State lists all stage events.
	_, body := get(t, base)
	var st map[string]any
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if events := st["events"].([]any); len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	if len(st["selected_mappings"].([]any)) == 0 {
		t.Fatal("no selected mappings in state")
	}

	// Paginated result rows.
	resp, body = get(t, base+"/result?limit=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", resp.Status)
	}
	var res map[string]any
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if rows := res["rows"].([]any); len(rows) == 0 || len(rows) > 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	next := int(res["next_offset"].(float64))
	_, body = get(t, fmt.Sprintf("%s/result?limit=5&offset=%d", base, next))
	var page2 map[string]any
	if err := json.Unmarshal([]byte(body), &page2); err != nil {
		t.Fatal(err)
	}
	if page2["offset"].(float64) != float64(next) {
		t.Fatalf("page 2 offset = %v, want %d", page2["offset"], next)
	}
	if fmt.Sprint(page2["rows"].([]any)[0]) == fmt.Sprint(res["rows"].([]any)[0]) {
		t.Fatal("page 2 repeats page 1")
	}

	// Trace is non-empty text.
	resp, body = get(t, base+"/trace")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "web-extraction") {
		t.Fatalf("trace: %s / %q...", resp.Status, body[:60])
	}

	// The listing shows the session.
	_, body = get(t, ts.URL+"/api/v1/sessions")
	var list map[string]any
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatal(err)
	}
	if list["total"].(float64) != 1 {
		t.Fatalf("session list: %v", list)
	}

	// Close the session; it is gone afterwards.
	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %s", dresp.Status)
	}
	resp, _ = get(t, base)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("state after delete: %s", resp.Status)
	}

	// Index page serves the session-aware UI.
	resp, body = get(t, ts.URL+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/api/v1/sessions") {
		t.Fatal("index page broken")
	}
}

// TestConcurrentSessions drives two sessions through all four pay-as-you-go
// steps in parallel — the multi-tenant claim, checked under -race.
func TestConcurrentSessions(t *testing.T) {
	_, ts := testServer(t)
	ids := []string{
		createSession(t, ts, `{"name":"a","n":50,"seed":1}`),
		createSession(t, ts, `{"name":"b","n":50,"seed":2}`),
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			base := ts.URL + "/api/v1/sessions/" + id
			for _, step := range []string{"bootstrap", "datacontext", "feedback?budget=20", "usercontext?model=crime"} {
				resp, err := http.Post(base+"/"+step, "", nil)
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("session %s step %s: %s", id, step, resp.Status)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range ids {
		_, body := get(t, ts.URL+"/api/v1/sessions/"+id)
		var st map[string]any
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if events := st["events"].([]any); len(events) != 4 {
			t.Fatalf("session %s: %d events, want 4", id, len(events))
		}
		if st["result_rows"].(float64) <= 0 {
			t.Fatalf("session %s: empty result", id)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	_, ts := testServer(t)

	// Unknown session IDs 404 everywhere.
	resp, _ := get(t, ts.URL+"/api/v1/sessions/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id state: %s", resp.Status)
	}
	presp, err := http.Post(ts.URL+"/api/v1/sessions/nope/bootstrap", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id bootstrap: %s", presp.Status)
	}

	// Malformed create config is a 400.
	cresp, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad create JSON: %s", cresp.Status)
	}

	// Unknown user-context model is a 400.
	id := createSession(t, ts, "")
	uresp, err := http.Post(ts.URL+"/api/v1/sessions/"+id+"/usercontext?model=nonsense", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	uresp.Body.Close()
	if uresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad model: %s", uresp.Status)
	}

	// Malformed feedback JSON is a 400.
	fresp, err := http.Post(ts.URL+"/api/v1/sessions/"+id+"/feedback", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad feedback JSON: %s", fresp.Status)
	}

	// Deleting twice: second delete 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/sessions/"+id, nil)
	d1, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	d1.Body.Close()
	d2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	d2.Body.Close()
	if d2.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %s", d2.Status)
	}
}

func TestSessionCap(t *testing.T) {
	_, ts := testServer(t, vada.WithMaxSessions(1))
	createSession(t, ts, `{"n":30}`)
	resp, err := http.Post(ts.URL+"/api/v1/sessions", "application/json", strings.NewReader(`{"n":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over cap: %s", resp.Status)
	}
}

func TestExplicitFeedbackJSON(t *testing.T) {
	s, ts := testServer(t)
	id := createSession(t, ts, "")
	base := ts.URL + "/api/v1/sessions/" + id
	post(t, base+"/bootstrap")

	sess, err := s.mgr.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	si := res.Schema.AttrIndex("street")
	pi := res.Schema.AttrIndex("postcode")
	item := map[string]any{
		"Street":   res.Tuples[0][si].String(),
		"Postcode": res.Tuples[0][pi].String(),
		"Attr":     "bedrooms",
		"Correct":  true,
	}
	body, _ := json.Marshal([]map[string]any{item})
	resp, err := http.Post(base+"/feedback", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit feedback: %s", resp.Status)
	}
}
